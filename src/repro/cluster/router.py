"""Cluster router: consistent-hash request placement plus failure handling.

The router front-ends N :class:`~repro.cluster.worker.ClusterWorker`\\ s.
Placement is **cache-affine**: the routing key is ``(schema, imported
module set)``, so prompts that would splice the same modules land on the
same worker and hit its warm store. A consistent-hash ring (virtual
nodes) keeps that mapping stable as workers come and go — when one
worker dies, only its arc of keys moves.

Affinity yields to load: if the home worker's queue is deeper than the
spill threshold, the request spills to the least-loaded healthy worker.
The spilled worker will miss locally on the home worker's modules and
pull them over the distribution plane — one fetch, then warm — which is
exactly the trade the plane exists to make cheap.

Residency beats the ring: workers advertise the module tags they can
serve without re-encoding (DRAM tiers, plus the snapshot catalog on
fabric stores) in their heartbeats, and ``pick_worker`` prefers a
healthy, unsaturated worker already holding the request's modules over
plain consistent-hash placement. The ring remains the fallback — and the
tiebreak — so placement stays stable when nobody (or everybody) is
resident, and failover still walks the preference list.

Failure model: workers heartbeat into a :class:`HeartbeatMonitor`; the
router's watchdog sweeps for silent workers, declares them dead, removes
them from the ring (``cluster_rebalance_total``), and releases their
queued requests so waiters fail over. ``serve`` retries a failed-over
request on the next worker in ring preference order; engines are
deterministic, so a retried request returns byte-identical output.
Requests the dead worker *finished* are already answered; requests it
merely queued are re-run elsewhere — no accepted request is lost.
"""

from __future__ import annotations

import asyncio

from repro.cache.storage import CacheKey
from repro.cluster.health import DEAD, HeartbeatMonitor, UP
from repro.cluster.ring import HashRing
from repro.cluster.worker import ClusterWorker
from repro.pml.ast import ImportNode, PromptNode
from repro.pml.parser import parse_prompt
from repro.server.errors import ServerClosed
from repro.server.metrics import MetricsRegistry

# Counter families rolled up from worker registries into router gauges.
_AGGREGATED_COUNTERS = (
    ("cluster_peer_fetch_total", ("outcome",), ("hit", "miss", "deduped", "retry", "error")),
    ("cluster_export_requests_total", ("outcome",), ("served", "not_found", "unserializable")),
    ("server_requests_total", ("outcome",), ("submitted", "completed", "failed", "expired", "rejected")),
)
_AGGREGATED_SCALARS = (
    "cluster_reencode_avoided_tokens_total",
    "cluster_fetch_bytes_total",
    "cluster_export_bytes_total",
    "server_tokens_generated_total",
)


class NoWorkerAvailable(ServerClosed):
    """Every worker is dead, draining, or already tried for this request."""


def _imported_names(prompt: PromptNode) -> set[str]:
    names: set[str] = set()

    def walk(children) -> None:
        for child in children:
            if isinstance(child, ImportNode):
                names.add(child.name)
                walk(child.children)

    walk(prompt.children)
    return names


def routing_key(prompt: PromptNode) -> str:
    """``schema|sorted imported modules`` — prompts importing the same
    module set share a placement (and therefore a warm store)."""
    return f"{prompt.schema}|{','.join(sorted(_imported_names(prompt)))}"


def module_tags(prompt: PromptNode) -> frozenset:
    """Store tags (``schema/module/solo``) for the modules a prompt
    imports — the same vocabulary workers advertise residency in, so the
    router can intersect the two when placing the request."""
    return frozenset(
        CacheKey(prompt.schema, name).tag() for name in _imported_names(prompt)
    )


class ClusterRouter:
    """Route requests across cluster workers; survive worker death."""

    def __init__(
        self,
        workers: list[ClusterWorker],
        vnodes: int = 64,
        spill_queue_depth: int = 8,
        raw_affinity_tokens: int = 32,
        metrics: MetricsRegistry | None = None,
        monitor: HeartbeatMonitor | None = None,
        watchdog_interval_s: float = 0.05,
    ) -> None:
        if not workers:
            raise ValueError("a cluster needs at least one worker")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate worker names: {names}")
        self.workers = {w.name: w for w in workers}
        self.ring = HashRing(vnodes=vnodes)
        self.spill_queue_depth = spill_queue_depth
        self.raw_affinity_tokens = raw_affinity_tokens
        self.metrics = metrics or MetricsRegistry()
        self.monitor = monitor or HeartbeatMonitor()
        self.watchdog_interval_s = watchdog_interval_s
        self._watchdog_task: asyncio.Task | None = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> "ClusterRouter":
        if self._running:
            return self
        for worker in self.workers.values():
            self.monitor.register(worker.name)
            worker.heartbeat_sink = self.monitor.beat
            worker.peer_resolver = self._make_resolver(worker.name)
            await worker.start()
            self.ring.add(worker.name)
        self._running = True
        self._watchdog_task = asyncio.create_task(self._watchdog())
        return self

    async def stop(self, drain: bool = True) -> None:
        if not self._running:
            return
        self._running = False
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            try:
                await self._watchdog_task
            except asyncio.CancelledError:
                pass  # expected: we cancelled it
            self._watchdog_task = None
        # Drain concurrently: a draining worker's exporter still serves,
        # so peers finishing their queues can fetch from it until the end.
        await asyncio.gather(
            *(w.stop(drain=drain) for w in self.workers.values()
              if w.name not in self._dead_names())
        )

    @property
    def closed(self) -> bool:
        """True once ``stop`` has begun: the router refuses new work
        (load generators should stop offering arrivals)."""
        return not self._running

    async def __aenter__(self) -> "ClusterRouter":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop(drain=exc == (None, None, None))

    def _dead_names(self) -> set[str]:
        return {n for n, h in self.monitor.workers.items() if h.state == DEAD}

    # -- schemas -----------------------------------------------------------------

    def register_schema(self, source: str, eager: bool = False) -> None:
        """Register a schema on every worker (lazily by default — modules
        encode where requests land, or arrive by peer fetch)."""
        for worker in self.workers.values():
            worker.register_schema(source, eager=eager)

    # -- placement ---------------------------------------------------------------

    def route_key(self, prompt: str) -> str:
        return routing_key(parse_prompt(prompt))

    def route_key_text(self, text: str) -> str:
        """Discovered-prefix affinity key for schema-free raw text.

        Keyed on the token *content* of the longest prefix any live
        worker's miner has promoted (stable across workers — module
        names are per-miner and die with them), falling back to the
        first ``raw_affinity_tokens`` tokens when nothing is discovered
        yet. Either way, prompts sharing a prefix land on one worker —
        which is what lets that worker's miner see the repeats and
        promote in the first place.
        """
        ids = self._tokenizer().encode(text)
        cover = 0
        for worker in self.workers.values():
            if worker._killed:
                continue
            discovery = getattr(worker.pc, "discovery", None)
            if discovery is not None:
                cover = max(cover, discovery.matched_prefix_len(ids))
        if cover == 0:
            cover = min(len(ids), self.raw_affinity_tokens)
        return "__raw__|" + ",".join(str(int(t)) for t in ids[:cover])

    def _tokenizer(self):
        for worker in self.workers.values():
            if not worker._killed:
                return worker.pc.tokenizer
        raise NoWorkerAvailable("every worker is dead")

    def pick_worker(
        self,
        key: str,
        exclude: set[str] | None = None,
        resident_tags: frozenset | None = None,
    ) -> ClusterWorker | None:
        """Residency-first, then home-or-spill placement among healthy
        workers. A worker already advertising the request's modules as
        resident serves them without a peer fetch or re-encode, so it
        outranks the consistent-hash home; ring preference breaks score
        ties, and saturated workers are passed over the same way a
        saturated home spills. No residency overlap (or none with queue
        room) falls through to plain ring placement."""
        exclude = exclude or set()
        prefs = [
            name for name in self.ring.preference_list(key)
            if name not in exclude and self._routable(name)
        ]
        if not prefs:
            return None
        resident = self._pick_resident(prefs, resident_tags)
        if resident is not None:
            return resident
        home = self.workers[prefs[0]]
        if home.server.queue_depth < self.spill_queue_depth:
            return home
        # Home is saturated: spill to the shallowest healthy queue if one
        # is meaningfully lighter; otherwise stay home (admission control
        # sheds if truly overloaded).
        spill_name = min(prefs, key=lambda n: self.workers[n].server.queue_depth)
        if spill_name != home.name:
            spill = self.workers[spill_name]
            if spill.server.queue_depth < self.spill_queue_depth:
                self.metrics.counter(
                    "cluster_spill_total",
                    "requests routed off their home worker for load",
                ).inc()
                return spill
        return home

    def _pick_resident(
        self, prefs: list[str], resident_tags: frozenset | None
    ) -> ClusterWorker | None:
        """Best residency overlap among routable workers with queue room;
        ``prefs`` arrives in ring-preference order, which is the tiebreak
        (strictly-better score required to displace an earlier worker)."""
        if not resident_tags:
            return None
        best_name, best_score = None, 0
        for name in prefs:
            health = self.monitor.workers.get(name)
            if health is None:
                continue
            score = len(resident_tags & health.resident)
            if (
                score > best_score
                and self.workers[name].server.queue_depth < self.spill_queue_depth
            ):
                best_name, best_score = name, score
        if best_name is None:
            return None
        self.metrics.counter(
            "cluster_residency_routed_total",
            "requests placed on a worker already holding their modules",
        ).inc()
        if best_name != prefs[0]:
            self.metrics.counter(
                "cluster_residency_over_ring_total",
                "residency placements that overrode the hash-ring home",
            ).inc()
        return self.workers[best_name]

    def _routable(self, name: str) -> bool:
        health = self.monitor.workers.get(name)
        return health is not None and health.state == UP

    def _make_resolver(self, owner: str):
        """Peer candidates for ``owner``'s miss fetcher: the module's
        schema home first (that's where its encodings concentrate), then
        every other fetchable worker."""

        def resolver(key) -> list[tuple[str, tuple[str, int]]]:
            ordered: list[str] = []
            if self.ring.nodes:
                ordered.extend(self.ring.preference_list(key.schema))
            for name in self.workers:
                if name not in ordered:
                    ordered.append(name)
            out = []
            for name in ordered:
                if name == owner:
                    continue
                health = self.monitor.workers.get(name)
                if health is None or not health.fetchable:
                    continue
                out.append((name, self.workers[name].exporter.address))
            return out

        return resolver

    # -- serving -----------------------------------------------------------------

    async def serve(self, prompt: str, **kwargs):
        """Submit ``prompt`` to its placed worker and await the result,
        failing over to the next preference when a worker dies under it.

        Admission rejections (``Overloaded``, PML errors, deadline
        expiry) propagate: they are end-to-end answers, not failures of a
        particular worker.
        """
        parsed = parse_prompt(prompt)
        return await self._serve_placed(
            routing_key(parsed),
            lambda worker: worker.server.submit(prompt, **kwargs),
            resident_tags=module_tags(parsed),
        )

    async def serve_text(self, text: str, **kwargs):
        """Raw-text analogue of :meth:`serve`: place by discovered-prefix
        affinity, submit via ``LiveServer.submit_text``, fail over the
        same way. Discovery state is per-worker; a failover target simply
        mines the prefix itself from the re-placed traffic."""
        return await self._serve_placed(
            self.route_key_text(text),
            lambda worker: worker.server.submit_text(text, **kwargs),
        )

    async def _serve_placed(self, key: str, submit, resident_tags=None):
        tried: set[str] = set()
        while True:
            worker = self.pick_worker(key, exclude=tried, resident_tags=resident_tags)
            if worker is None:
                raise NoWorkerAvailable(
                    f"no healthy worker for {key!r} (tried {sorted(tried)})"
                )
            try:
                request = await submit(worker)
            except ServerClosed:
                # Lost a race with death/drain; never occupied a slot.
                tried.add(worker.name)
                continue
            self.metrics.counter(
                "cluster_requests_total", "requests placed, by worker",
                worker=worker.name,
            ).inc()
            try:
                return await request.wait()
            except ServerClosed:
                # The worker died with this request queued. It never ran:
                # re-placing it elsewhere cannot double-execute, and the
                # deterministic engine makes the retry byte-identical.
                tried.add(worker.name)
                self.metrics.counter(
                    "cluster_failover_total",
                    "requests re-placed after their worker died",
                ).inc()

    # -- failure handling --------------------------------------------------------

    async def _watchdog(self) -> None:
        while True:
            await asyncio.sleep(self.watchdog_interval_s)
            for name in self.monitor.sweep():
                await self._handle_death(name)

    async def _handle_death(self, name: str) -> None:
        """Remove a dead worker from the ring and release its queue."""
        if name in self.ring.nodes:
            self.ring.remove(name)
            self.metrics.counter(
                "cluster_rebalance_total", "ring rebalances after worker death"
            ).inc()
        worker = self.workers.get(name)
        if worker is not None and not worker._killed:
            # Missed heartbeats with the process still around (hung loop,
            # test-induced silence): finish the kill so queued requests
            # fail fast and their waiters re-place them.
            await worker.kill()

    async def kill_worker(self, name: str) -> None:
        """Induce a worker death (tests, chaos drills): abrupt stop, dead
        in the monitor, ring rebalanced, queued requests released to
        fail over."""
        worker = self.workers[name]
        await worker.kill()
        self.monitor.declare_dead(name, reason="killed")
        await self._handle_death(name)

    # -- observability -----------------------------------------------------------

    def refresh_cluster_gauges(self) -> None:
        """Mirror per-worker state and rolled-up plane counters into the
        router registry (same pattern as ``LiveServer.refresh_store_gauges``)."""
        for name, worker in self.workers.items():
            health = self.monitor.workers.get(name)
            state = health.state if health is not None else "unknown"
            self.metrics.gauge(
                "cluster_worker_queue_depth", "per-worker admission queue depth",
                worker=name,
            ).set(worker.server.queue_depth)
            self.metrics.gauge(
                "cluster_worker_up", "1 if the worker is routable",
                worker=name,
            ).set(1.0 if state == UP else 0.0)
        for family, label_names, values in _AGGREGATED_COUNTERS:
            label = label_names[0]
            for value in values:
                total = sum(
                    w.metrics.counter(family, **{label: value}).value
                    for w in self.workers.values()
                )
                self.metrics.gauge(
                    family, f"cluster-wide rollup of {family}", **{label: value}
                ).set(total)
        for family in _AGGREGATED_SCALARS:
            total = sum(w.metrics.counter(family).value for w in self.workers.values())
            self.metrics.gauge(family, f"cluster-wide rollup of {family}").set(total)

    def snapshot(self) -> dict:
        """Cluster-wide JSON snapshot: router rollups + per-worker detail."""
        self.refresh_cluster_gauges()
        return {
            "router": self.metrics.snapshot(),
            "workers": {
                name: worker.server.snapshot()
                for name, worker in self.workers.items()
                if not worker._killed
            },
            "health": {
                name: {
                    "state": h.state,
                    "queue_depth": h.queue_depth,
                    "beats": h.beats,
                    "resident": len(h.resident),
                }
                for name, h in self.monitor.workers.items()
            },
            "ring": self.ring.ownership_share(),
        }

    def prometheus(self) -> str:
        self.refresh_cluster_gauges()
        return self.metrics.to_prometheus()
