"""repro.cluster — multi-worker sharded serving over a module-KV plane.

Layer 7 of the repo: N :class:`ClusterWorker`\\ s (each a full
:class:`~repro.server.runtime.LiveServer` with its own module store)
behind a :class:`ClusterRouter` that places requests by cache affinity
on a consistent-hash ring, and a binary distribution plane
(:mod:`~repro.cluster.wire`, :class:`CacheExporter`,
:class:`PeerFetcher`) that moves encoded module KV between workers so a
module encoded anywhere is paid for once, cluster-wide — the paper's
§3.3 encode-once economics stretched across machines.
"""

from repro.cluster.exporter import CacheExporter
from repro.cluster.fetcher import FetchFailed, PeerFetcher
from repro.cluster.health import (
    DEAD,
    DRAINING,
    HealthEvent,
    HeartbeatMonitor,
    UP,
    WorkerHealth,
)
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterRouter, NoWorkerAvailable, routing_key
from repro.cluster.worker import ClusterWorker

__all__ = [
    "CacheExporter",
    "ClusterRouter",
    "ClusterWorker",
    "DEAD",
    "DRAINING",
    "FetchFailed",
    "HashRing",
    "HealthEvent",
    "HeartbeatMonitor",
    "NoWorkerAvailable",
    "PeerFetcher",
    "UP",
    "WorkerHealth",
    "routing_key",
]
