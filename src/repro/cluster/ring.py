"""Consistent-hash ring for cache-affinity routing.

Prompts that share modules should land on the worker already holding
their encoded KV (the ChunkAttention observation: prefix-aware sharing
pays off most when common-segment requests are routed together). A
consistent-hash ring gives that affinity a stable, decentralized form:

- each worker owns ``vnodes`` points on a 64-bit ring (xxh64 of
  ``"name#i"``), so load spreads evenly without a central table;
- a request key maps to the first point clockwise from its hash — the
  worker's death moves *only its own keys* to their successors, leaving
  every other placement (and its warm cache) untouched;
- :meth:`preference_list` yields the distinct-owner failover order the
  router walks when the home worker is overloaded or dead.
"""

from __future__ import annotations

import bisect

from repro.cluster.wire import xxh64

DEFAULT_VNODES = 64


class HashRing:
    """Consistent hashing with virtual nodes over xxh64.

    Not thread-safe: the router mutates it only from its event loop.
    """

    def __init__(self, nodes: list[str] | None = None, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[int] = []  # sorted vnode hashes
        self._owners: dict[int, str] = {}  # vnode hash -> node name
        self.nodes: set[str] = set()
        for node in nodes or []:
            self.add(node)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: str) -> bool:
        return node in self.nodes

    @staticmethod
    def _hash(text: str) -> int:
        return xxh64(text.encode())

    def add(self, node: str) -> None:
        if node in self.nodes:
            return
        self.nodes.add(node)
        for i in range(self.vnodes):
            point = self._hash(f"{node}#{i}")
            # Collisions across 64-bit hashes are ~impossible; keep the
            # first owner deterministic if one ever happens.
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = node

    def remove(self, node: str) -> None:
        if node not in self.nodes:
            return
        self.nodes.discard(node)
        doomed = [p for p, owner in self._owners.items() if owner == node]
        for point in doomed:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def node_for(self, key: str) -> str:
        """The key's home node. Raises :class:`LookupError` on an empty ring."""
        if not self._points:
            raise LookupError("hash ring is empty")
        point = self._hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap past 2^64 back to the first point
        return self._owners[self._points[index]]

    def preference_list(self, key: str, n: int | None = None) -> list[str]:
        """The first ``n`` *distinct* nodes clockwise from the key's hash —
        home first, then the failover order."""
        if not self._points:
            return []
        want = len(self.nodes) if n is None else min(n, len(self.nodes))
        point = self._hash(key)
        start = bisect.bisect_right(self._points, point)
        out: list[str] = []
        for step in range(len(self._points)):
            owner = self._owners[self._points[(start + step) % len(self._points)]]
            if owner not in out:
                out.append(owner)
                if len(out) == want:
                    break
        return out

    def ownership_share(self) -> dict[str, float]:
        """Fraction of the 64-bit key space owned by each node — the
        balance diagnostic ``loadgen --cluster`` prints."""
        if not self._points:
            return {}
        if len(self._points) == 1:
            return {self._owners[self._points[0]]: 1.0}
        shares: dict[str, float] = {node: 0.0 for node in self.nodes}
        span = float(1 << 64)
        for i, point in enumerate(self._points):
            prev = self._points[i - 1]  # wraps: first arc starts at the last point
            arc = (point - prev) % (1 << 64)
            shares[self._owners[point]] += arc / span
        return shares
