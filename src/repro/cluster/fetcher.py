"""Peer-side module-KV fetching: the consumer half of the distribution plane.

``PeerFetcher.fetch`` pulls one encoded module from a peer's
:class:`~repro.cluster.exporter.CacheExporter` with the robustness a
flaky network demands:

- **timeout** per attempt (connect + transfer);
- **retry with exponential backoff** on connection failures and
  timeouts — a worker that is briefly unreachable (GC pause, restart)
  should not force a re-encode;
- **singleflight** dedup: concurrent fetches for the same ``(peer, key)``
  share one wire transfer (the first caller's), so a burst of requests
  missing the same module costs one round-trip, not N.

``fetch`` returns the stored representation (:class:`ModuleKV` or
:class:`CompressedModuleKV`) on success and ``None`` on a definitive
miss (peer does not hold the key); it raises :class:`FetchFailed` when
every attempt errored — the caller decides whether to re-encode locally.
"""

from __future__ import annotations

import asyncio

from repro.cache.storage import CacheKey
from repro.cluster import wire
from repro.server.metrics import MetricsRegistry


class FetchFailed(Exception):
    """Every attempt to reach the peer failed (network or protocol)."""

    def __init__(self, key: CacheKey, peer: tuple[str, int], attempts: int, last: str) -> None:
        self.key = key
        self.peer = peer
        self.attempts = attempts
        super().__init__(
            f"fetch of {key.tag()} from {peer[0]}:{peer[1]} failed after "
            f"{attempts} attempt(s): {last}"
        )


class PeerFetcher:
    """Fetch encoded modules from peer exporters, politely but firmly."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        timeout_s: float = 2.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
    ) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        # Singleflight table: (host, port, key) -> Future shared by every
        # concurrent caller. Event-loop-confined, so no lock.
        self._inflight: dict[tuple, asyncio.Future] = {}

    async def fetch(self, peer: tuple[str, int], key: CacheKey):
        """Module KV from ``peer``, or ``None`` if the peer lacks it.

        Raises :class:`FetchFailed` when the peer could not be reached
        within the retry budget.
        """
        flight_key = (peer[0], peer[1], key)
        existing = self._inflight.get(flight_key)
        if existing is not None:
            self._count("deduped")
            return await asyncio.shield(existing)
        future = asyncio.get_running_loop().create_future()
        self._inflight[flight_key] = future
        try:
            result = await self._fetch_with_retries(peer, key)
            future.set_result(result)
            return result
        except BaseException as exc:
            future.set_exception(exc)
            # A dedup waiter may never await it; mark retrieved.
            future.exception()
            raise
        finally:
            del self._inflight[flight_key]

    async def _fetch_with_retries(self, peer: tuple[str, int], key: CacheKey):
        delay = self.backoff_s
        last_error = "no attempts made"
        start = asyncio.get_running_loop().time()
        for attempt in range(1 + self.retries):
            if attempt:
                await asyncio.sleep(delay)
                delay *= self.backoff_factor
            try:
                kv = await asyncio.wait_for(
                    self._fetch_once(peer, key), self.timeout_s
                )
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError, wire.WireError) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                self._count("retry" if attempt < self.retries else "error")
                continue
            elapsed = asyncio.get_running_loop().time() - start
            self.metrics.histogram(
                "cluster_peer_fetch_seconds", "wall time per peer fetch"
            ).observe(elapsed)
            if kv is None:
                self._count("miss")
                return None
            self._count("hit")
            self.metrics.counter(
                "cluster_fetch_bytes_total", "module-KV bytes fetched from peers"
            ).inc(kv.nbytes())
            return kv
        raise FetchFailed(key, peer, 1 + self.retries, last_error)

    async def _fetch_once(self, peer: tuple[str, int], key: CacheKey):
        reader, writer = await asyncio.open_connection(peer[0], peer[1])
        try:
            writer.write(wire.pack_get(key))
            await writer.drain()
            msg_type, payload = await wire.read_frame(reader)
            if msg_type == wire.MSG_NOT_FOUND:
                return None
            if msg_type == wire.MSG_ERROR:
                raise wire.WireError(wire.decode_json(payload).get("error", "peer error"))
            if msg_type != wire.MSG_META:
                raise wire.WireError(f"expected META, got message type {msg_type}")
            meta = wire.decode_json(payload)
            body = bytearray()
            total = int(meta["total_bytes"])
            while True:
                msg_type, payload = await wire.read_frame(reader)
                if msg_type == wire.MSG_CHUNK:
                    body.extend(payload)
                    if len(body) > total:
                        raise wire.WireError(
                            f"peer streamed {len(body)} bytes, header declared {total}"
                        )
                    continue
                if msg_type == wire.MSG_END:
                    break
                raise wire.WireError(f"expected CHUNK/END, got message type {msg_type}")
            return wire.deserialize_module(meta, body)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # connection already torn down

    def _count(self, outcome: str) -> None:
        self.metrics.counter(
            "cluster_peer_fetch_total", "peer fetch attempts by outcome",
            outcome=outcome,
        ).inc()
