"""The module-KV wire protocol: how encoded modules travel between workers.

Prompt Cache's economics (§3.3) are "encode once, splice cheaply" — but a
single process can only amortize encoding over its own requests. The
cluster's distribution plane extends the amortization across workers: a
worker that is missing a module fetches the *encoded attention states*
from the peer that already paid the prefill, instead of re-encoding.

This module defines the byte format both ends speak:

- **Framing.** Every message is one length-prefixed frame::

      !4s B B 2x I   = magic "PCKV", version, msg type, pad, payload length

  followed by ``length`` payload bytes. Small control payloads are JSON;
  tensor payloads are raw bytes streamed as CHUNK frames.
- **Module transfer.** A GET names a :class:`~repro.cache.storage.CacheKey`.
  The reply is one META frame (JSON header: schema/module/variant, payload
  kind — ``raw`` :class:`~repro.llm.kv.ModuleKV` or a codec name for
  :class:`~repro.cache.compress.CompressedModuleKV` — per-segment dtype and
  shape, total byte count, xxh64 checksum), then the segments' bytes as
  CHUNK frames, then an END frame. Serialization is **zero-copy** on the
  send side: contiguous tensors are framed as :class:`memoryview`\\ s, never
  joined into an intermediate buffer. The receiver assembles into one
  preallocated ``bytearray`` and builds NumPy views over it — one
  allocation for the whole module.
- **Integrity.** The META header carries an xxh64 checksum of the whole
  payload; the receiver verifies before the module is trusted. xxh64 is
  implemented here in pure Python (the container has no ``xxhash`` wheel)
  and validated against the reference test vectors.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

import numpy as np

from repro.cache.compress import CompressedModuleKV
from repro.cache.storage import CacheKey
from repro.llm.kv import ModuleKV

MAGIC = b"PCKV"
VERSION = 1

# Message types.
MSG_GET = 1  # request one module by key (JSON payload)
MSG_META = 2  # module header: kind, segments, checksum (JSON payload)
MSG_CHUNK = 3  # raw payload bytes
MSG_END = 4  # transfer complete (JSON: {"checksum": ...})
MSG_NOT_FOUND = 5  # key unknown to this peer
MSG_ERROR = 6  # peer-side failure (JSON: {"error": ...})
MSG_PING = 7  # liveness probe
MSG_PONG = 8  # probe reply (JSON: {"state", "queue_depth"})
MSG_STATS = 9  # request the peer's metrics snapshot
MSG_STATS_REPLY = 10  # JSON metrics snapshot

_HEADER = struct.Struct("!4sBB2xI")
HEADER_SIZE = _HEADER.size

DEFAULT_CHUNK_SIZE = 1 << 18  # 256 KiB per CHUNK frame
MAX_FRAME_BYTES = 1 << 30  # reject absurd lengths before allocating

_RAW_KIND = "raw"


class WireError(Exception):
    """Malformed frame, protocol violation, or checksum mismatch."""


# ---------------------------------------------------------------------------
# xxh64 — pure-Python implementation of the XXH64 digest.
# ---------------------------------------------------------------------------

_P1 = 0x9E3779B185EBCA87
_P2 = 0xC2B2AE3D27D4EB4F
_P3 = 0x165667B19E3779F9
_P4 = 0x85EBCA77C2B2AE63
_P5 = 0x27D4EB2F165667C5
_M64 = (1 << 64) - 1


def _rotl(x: int, r: int) -> int:
    return ((x << r) | (x >> (64 - r))) & _M64


def _round(acc: int, word: int) -> int:
    return (_rotl((acc + word * _P2) & _M64, 31) * _P1) & _M64


def _merge(h: int, acc: int) -> int:
    h ^= _round(0, acc)
    return ((h * _P1) + _P4) & _M64


def xxh64(data: bytes | bytearray | memoryview, seed: int = 0) -> int:
    """XXH64 digest of ``data`` as an unsigned 64-bit integer."""
    view = memoryview(data).cast("B")
    n = len(view)
    i = 0
    if n >= 32:
        v1 = (seed + _P1 + _P2) & _M64
        v2 = (seed + _P2) & _M64
        v3 = seed & _M64
        v4 = (seed - _P1) & _M64
        words = struct.unpack_from(f"<{(n // 8)}Q", view)
        stripes = n // 32
        for s in range(stripes):
            j = 4 * s
            v1 = _round(v1, words[j])
            v2 = _round(v2, words[j + 1])
            v3 = _round(v3, words[j + 2])
            v4 = _round(v4, words[j + 3])
        i = stripes * 32
        h = (_rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)) & _M64
        h = _merge(h, v1)
        h = _merge(h, v2)
        h = _merge(h, v3)
        h = _merge(h, v4)
    else:
        h = (seed + _P5) & _M64
    h = (h + n) & _M64
    while i + 8 <= n:
        (word,) = struct.unpack_from("<Q", view, i)
        h = ((_rotl(h ^ _round(0, word), 27) * _P1) + _P4) & _M64
        i += 8
    if i + 4 <= n:
        (word,) = struct.unpack_from("<I", view, i)
        h = ((_rotl(h ^ (word * _P1) & _M64, 23) * _P2) + _P3) & _M64
        i += 4
    while i < n:
        h = ((_rotl(h ^ (view[i] * _P5) & _M64, 11)) * _P1) & _M64
        i += 1
    h ^= h >> 33
    h = (h * _P2) & _M64
    h ^= h >> 29
    h = (h * _P3) & _M64
    h ^= h >> 32
    return h


class StreamingXXH64:
    """Incremental xxh64 over chunks (the receiver hashes as it reads).

    Buffers at most 31 bytes between updates; the digest is identical to
    :func:`xxh64` over the concatenated input.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed & _M64
        self._v = [
            (seed + _P1 + _P2) & _M64,
            (seed + _P2) & _M64,
            seed & _M64,
            (seed - _P1) & _M64,
        ]
        self._buffer = bytearray()
        self._total = 0
        self._seen_stripes = False

    def update(self, data: bytes | bytearray | memoryview) -> None:
        view = memoryview(data).cast("B")
        self._total += len(view)
        self._buffer.extend(view)
        usable = len(self._buffer) - (len(self._buffer) % 32)
        if usable:
            words = struct.unpack_from(f"<{usable // 8}Q", self._buffer)
            v1, v2, v3, v4 = self._v
            for s in range(usable // 32):
                j = 4 * s
                v1 = _round(v1, words[j])
                v2 = _round(v2, words[j + 1])
                v3 = _round(v3, words[j + 2])
                v4 = _round(v4, words[j + 3])
            self._v = [v1, v2, v3, v4]
            del self._buffer[:usable]
            self._seen_stripes = True

    def digest(self) -> int:
        if self._seen_stripes:
            v1, v2, v3, v4 = self._v
            h = (
                _rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)
            ) & _M64
            for v in self._v:
                h = _merge(h, v)
        else:
            h = (self.seed + _P5) & _M64
        h = (h + self._total) & _M64
        view = memoryview(bytes(self._buffer))
        i, n = 0, len(view)
        while i + 8 <= n:
            (word,) = struct.unpack_from("<Q", view, i)
            h = ((_rotl(h ^ _round(0, word), 27) * _P1) + _P4) & _M64
            i += 8
        if i + 4 <= n:
            (word,) = struct.unpack_from("<I", view, i)
            h = ((_rotl(h ^ (word * _P1) & _M64, 23) * _P2) + _P3) & _M64
            i += 4
        while i < n:
            h = ((_rotl(h ^ (view[i] * _P5) & _M64, 11)) * _P1) & _M64
            i += 1
        h ^= h >> 33
        h = (h * _P2) & _M64
        h ^= h >> 29
        h = (h * _P3) & _M64
        h ^= h >> 32
        return h


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def pack_frame(msg_type: int, payload: bytes | memoryview = b"") -> bytes:
    """One complete frame (header + payload) as a bytes object."""
    return _HEADER.pack(MAGIC, VERSION, msg_type, len(payload)) + bytes(payload)


def pack_header(msg_type: int, payload_len: int) -> bytes:
    """Just the 12-byte frame header — used to frame a memoryview payload
    without copying it into a joined buffer."""
    return _HEADER.pack(MAGIC, VERSION, msg_type, payload_len)


def pack_json(msg_type: int, obj: dict) -> bytes:
    return pack_frame(msg_type, json.dumps(obj, sort_keys=True).encode())


def unpack_header(header: bytes) -> tuple[int, int]:
    """(msg_type, payload_len) from a 12-byte header; raises WireError."""
    try:
        magic, version, msg_type, length = _HEADER.unpack(header)
    except struct.error as exc:
        raise WireError(f"short frame header ({len(header)} bytes)") from exc
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != VERSION:
        raise WireError(f"unsupported protocol version {version}")
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds limit {MAX_FRAME_BYTES}")
    return msg_type, length


async def read_frame(reader) -> tuple[int, bytes]:
    """Read one frame from an asyncio StreamReader: (msg_type, payload).

    Raises :class:`asyncio.IncompleteReadError` on EOF mid-frame and
    :class:`WireError` on a malformed header.
    """
    header = await reader.readexactly(HEADER_SIZE)
    msg_type, length = unpack_header(header)
    payload = await reader.readexactly(length) if length else b""
    return msg_type, payload


def decode_json(payload: bytes) -> dict:
    try:
        return json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed JSON payload: {exc}") from exc


# ---------------------------------------------------------------------------
# Module serialization
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WireModule:
    """A module's KV states flattened for the wire.

    ``buffers`` are C-contiguous byte views over the original tensors —
    the frames go straight from tensor memory to the socket.
    """

    meta: dict
    buffers: list[memoryview]

    @property
    def total_bytes(self) -> int:
        return sum(len(b) for b in self.buffers)


def _segment_views(
    named: list[tuple[str, np.ndarray]]
) -> tuple[list[dict], list[memoryview]]:
    segments: list[dict] = []
    buffers: list[memoryview] = []
    for name, array in named:
        contiguous = np.ascontiguousarray(array)
        segments.append(
            {
                "name": name,
                "dtype": str(contiguous.dtype),
                "shape": list(contiguous.shape),
                "nbytes": int(contiguous.nbytes),
            }
        )
        buffers.append(memoryview(contiguous).cast("B"))
    return segments, buffers


def serialize_module(key: CacheKey, kv) -> WireModule:
    """Flatten a :class:`ModuleKV` or :class:`CompressedModuleKV` into a
    wire header + zero-copy payload views. The header records the payload
    ``kind`` (``"raw"`` or the codec name) so the receiver rebuilds the
    exact store representation."""
    if isinstance(kv, ModuleKV):
        kind = _RAW_KIND
        named: list[tuple[str, np.ndarray]] = [("positions", kv.positions)]
        for i, (k, v) in enumerate(zip(kv.keys, kv.values)):
            named.append((f"keys{i}", k))
            named.append((f"values{i}", v))
    elif isinstance(kv, CompressedModuleKV):
        kind = kv.codec
        named = [("positions", kv.positions)]
        for field_name in sorted(kv.payload):
            for i, tensor in enumerate(kv.payload[field_name]):
                named.append((f"{field_name}:{i}", tensor))
    else:
        raise WireError(f"cannot serialize {type(kv).__name__} for the wire")
    segments, buffers = _segment_views(named)
    checksum = StreamingXXH64()
    for buf in buffers:
        checksum.update(buf)
    meta = {
        "schema": key.schema,
        "module": key.module,
        "variant": key.variant,
        "kind": kind,
        "segments": segments,
        "total_bytes": sum(len(b) for b in buffers),
        "checksum": f"{checksum.digest():016x}",
    }
    return WireModule(meta=meta, buffers=buffers)


def iter_chunks(
    wire_module: WireModule, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> "list[memoryview]":
    """Split the payload views into ≤ ``chunk_size`` memoryview slices,
    never crossing a copy — large tensors stream as several frames."""
    chunks: list[memoryview] = []
    for buf in wire_module.buffers:
        for start in range(0, len(buf), chunk_size):
            chunks.append(buf[start : start + chunk_size])
    return chunks


def deserialize_module(meta: dict, payload: bytearray | bytes):
    """Rebuild the stored KV object from META + assembled payload bytes.

    Verifies the checksum, then builds NumPy views over the payload
    buffer (zero-copy when ``payload`` is a writable bytearray).
    """
    declared = int(meta["total_bytes"])
    if len(payload) != declared:
        raise WireError(
            f"payload is {len(payload)} bytes, header declared {declared}"
        )
    checksum = f"{xxh64(payload):016x}"
    if checksum != meta["checksum"]:
        raise WireError(
            f"checksum mismatch: computed {checksum}, header {meta['checksum']}"
        )
    arrays: dict[str, np.ndarray] = {}
    offset = 0
    for segment in meta["segments"]:
        dtype = np.dtype(segment["dtype"])
        shape = tuple(segment["shape"])
        nbytes = int(segment["nbytes"])
        array = np.frombuffer(
            payload, dtype=dtype, count=int(np.prod(shape)) if shape else 1,
            offset=offset,
        ).reshape(shape)
        arrays[segment["name"]] = array
        offset += nbytes
    positions = arrays.pop("positions")
    if meta["kind"] == _RAW_KIND:
        n_layers = sum(1 for name in arrays if name.startswith("keys"))
        return ModuleKV(
            keys=[arrays[f"keys{i}"] for i in range(n_layers)],
            values=[arrays[f"values{i}"] for i in range(n_layers)],
            positions=positions,
        )
    payload_fields: dict[str, list[np.ndarray]] = {}
    by_field: dict[str, list[tuple[int, np.ndarray]]] = {}
    for name, array in arrays.items():
        field_name, _, index = name.rpartition(":")
        if not field_name:
            raise WireError(f"malformed segment name {name!r}")
        by_field.setdefault(field_name, []).append((int(index), array))
    for field_name, items in by_field.items():
        payload_fields[field_name] = [a for _, a in sorted(items)]
    return CompressedModuleKV(
        codec=meta["kind"], payload=payload_fields, positions=positions
    )


def key_from_request(payload: bytes) -> CacheKey:
    obj = decode_json(payload)
    try:
        return CacheKey(obj["schema"], obj["module"], obj["variant"])
    except KeyError as exc:
        raise WireError(f"GET request missing field {exc}") from exc


def pack_get(key: CacheKey) -> bytes:
    return pack_json(
        MSG_GET,
        {"schema": key.schema, "module": key.module, "variant": key.variant},
    )
