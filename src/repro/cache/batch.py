"""Shared-module memory accounting for batched serving (paper §3.4).

The paper: "If all prompts share the same 1K token module, Prompt Cache
can reduce the memory footprint by 50% when combined with methods like
paged attention, allowing for a larger working batch size and thus higher
throughput." This module quantifies exactly that: per-request KV bytes
with and without module sharing, and the batch size a fixed memory budget
admits under each scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.config import ModelConfig


@dataclass(frozen=True)
class BatchRequest:
    """One request: which shared modules it imports + its private tokens."""

    module_names: tuple[str, ...]
    private_tokens: int  # uncached text + generated tokens


@dataclass
class BatchFootprint:
    duplicated_bytes: int  # every request holds its own copy (KV-cache baseline)
    shared_bytes: int  # one copy per distinct module + private per request

    @property
    def savings_fraction(self) -> float:
        if self.duplicated_bytes == 0:
            return 0.0
        return 1.0 - self.shared_bytes / self.duplicated_bytes


def batch_footprint(
    config: ModelConfig,
    requests: list[BatchRequest],
    module_tokens: dict[str, int],
    bytes_per_element: int = 2,
) -> BatchFootprint:
    """KV bytes for a batch, duplicated vs module-shared."""
    per_token = config.kv_bytes_per_token(bytes_per_element)
    duplicated = 0
    used_modules: set[str] = set()
    private_total = 0
    for request in requests:
        module_sum = sum(module_tokens[name] for name in request.module_names)
        duplicated += (module_sum + request.private_tokens) * per_token
        used_modules.update(request.module_names)
        private_total += request.private_tokens
    shared = (
        sum(module_tokens[name] for name in used_modules) + private_total
    ) * per_token
    return BatchFootprint(duplicated_bytes=duplicated, shared_bytes=shared)


def max_batch_size(
    config: ModelConfig,
    memory_budget_bytes: int,
    module_tokens_per_request: int,
    private_tokens_per_request: int,
    shared: bool,
    bytes_per_element: int = 2,
) -> int:
    """Largest uniform batch a KV budget admits.

    With sharing, the module copy is paid once; without, per request —
    the throughput lever described in §3.4/§5.4.
    """
    per_token = config.kv_bytes_per_token(bytes_per_element)
    private = private_tokens_per_request * per_token
    module = module_tokens_per_request * per_token
    if shared:
        remaining = memory_budget_bytes - module
        return max(remaining // private, 0) if private else 0
    return max(memory_budget_bytes // (module + private), 0)
