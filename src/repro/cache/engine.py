"""The Prompt Cache engine: schema registration and cached inference.

:class:`PromptCache` ties the substrates together (paper Fig 2):

1. **Register** a schema → lay out position IDs (:mod:`repro.cache.layout`)
   and optionally pre-encode every module (:mod:`repro.cache.encoder`) into
   the two-tier store (:mod:`repro.cache.storage`).
2. **Serve** a prompt → resolve it against the schema, splice the cached
   module KV states together (buffered concat, §4.2), prefill only the
   uncached tokens (parameter arguments + new text) at their schema
   positions, and decode. TTFT = splice + suffix prefill, replacing the
   full quadratic prefill (§3.4).

:meth:`PromptCache.baseline` runs the exact same token content through the
ordinary KV-cache path, which is how the accuracy and latency comparisons
pair up cached vs baseline runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache.encoder import drop_param_slots, encode_module, encode_scaffold
from repro.cache.layout import ModuleLayout, SchemaLayout, layout_schema
from repro.cache.storage import CacheKey, ModuleCacheStore, SOLO_VARIANT
from repro.llm.generation import GenerationResult, decode_loop, generate
from repro.llm.kv import KVCache, LayerKV, ModuleKV, buffered_concat
from repro.llm.models import TransformerModel
from repro.pml.chat import ChatTemplate, template_for_architecture
from repro.pml.errors import SchemaMismatchError, UnknownSchemaError
from repro.pml.parser import parse_prompt
from repro.pml.prompt import ResolvedPrompt, resolve
from repro.pml.schema import Schema


@dataclass
class RegisteredSchema:
    schema: Schema
    layout: SchemaLayout
    scaffold_variants: dict[str, str] = field(default_factory=dict)
    # module name -> scaffold variant id covering it (used when the whole
    # scaffold set is imported)
    scaffold_sets: list[tuple[str, ...]] = field(default_factory=list)


@dataclass
class ServeResult:
    """Cached-inference outcome plus the latency/occupancy breakdown."""

    output_ids: list[int]
    text: str
    prompt_tokens: int
    cached_tokens: int
    uncached_tokens: int
    ttft_s: float
    splice_s: float  # cache lookup + KV concatenation ("memcpy")
    suffix_s: float  # uncached-token prefill
    step_times_s: list[float] = field(default_factory=list)
    tier_tokens: dict[str, int] = field(default_factory=dict)

    @property
    def ttst_s(self) -> float:
        return float(np.mean(self.step_times_s)) if self.step_times_s else 0.0


@dataclass
class BatchServeResult:
    """Batch outcome plus the §3.4 memory picture."""

    results: list[ServeResult]
    physical_bytes: int  # live page storage (shared modules counted once)
    duplicated_bytes: int  # what per-request private caches would cost
    shared_groups: int  # distinct module sequences in the batch

    @property
    def memory_savings(self) -> float:
        if self.duplicated_bytes == 0:
            return 0.0
        return 1.0 - self.physical_bytes / self.duplicated_bytes

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


@dataclass
class _Plan:
    """Everything needed to serve one resolved prompt."""

    # (layout, kv-after-slot-drop-pending, variant) in document order
    modules: list[tuple[ModuleLayout, str]]
    # Uncached work: (token_ids, positions) batches for args + new text
    uncached: list[tuple[np.ndarray, np.ndarray]]
    # Baseline chunks: (sort_key, token_ids) reproducing identical content
    baseline_chunks: list[tuple[int, list[int]]]
    next_position: int  # first decode position
    # Fully-cached prompts recompute their highest-positioned token to get
    # first logits: (module name, direct-sequence index) or None.
    recompute_tail: tuple[str, int] | None = None


class PromptCache:
    """Modular attention reuse on top of a NumPy transformer.

    Parameters
    ----------
    model, tokenizer:
        The inference engine and its tokenizer.
    store:
        Two-tier module store; defaults to unbounded tiers.
    template:
        Chat template compiled into role tags; defaults to the model
        architecture's native template.
    default_tier:
        Where newly encoded modules are stored (``"gpu"`` or ``"cpu"``).
    """

    def __init__(
        self,
        model: TransformerModel,
        tokenizer,
        store: ModuleCacheStore | None = None,
        template: ChatTemplate | None = None,
        default_tier: str = "gpu",
        kv_codec=None,
        promote_on_cpu_hit: bool = False,
    ) -> None:
        from repro.cache.compress import IdentityCodec, codec as codec_by_name

        self.model = model
        self.tokenizer = tokenizer
        self.store = store or ModuleCacheStore()
        self.template = template or template_for_architecture(model.config.architecture)
        self.default_tier = default_tier
        # Promote modules served from host memory back into the GPU tier
        # (the simulator's fetch path and the paper's §3.2.3 prefetch);
        # keeps hot modules on the fast route when the GPU tier is bounded.
        self.promote_on_cpu_hit = promote_on_cpu_hit
        if kv_codec is None:
            self.kv_codec = IdentityCodec()
        elif isinstance(kv_codec, str):
            self.kv_codec = codec_by_name(kv_codec)
        else:
            self.kv_codec = kv_codec
        self.schemas: dict[str, RegisteredSchema] = {}

    # -- schema management -----------------------------------------------------

    def register_schema(
        self, source: str | Schema, eager: bool = True, tier: str | None = None
    ) -> Schema:
        """Parse, lay out, and (eagerly) encode a schema's modules.

        Eager registration mirrors the paper's flow — "Prompt Cache
        populates its cache when a schema is loaded" (Fig 1c) — so the
        first derived prompt already hits warm states. Lazy registration
        encodes each module on first use instead.
        """
        schema = source if isinstance(source, Schema) else Schema.parse(source, self.template)
        layout = layout_schema(schema, self.tokenizer)
        if layout.total_length >= self.model.config.max_position:
            raise SchemaMismatchError(
                f"schema {schema.name!r} needs {layout.total_length} positions "
                f"but the model supports {self.model.config.max_position}"
            )
        registered = RegisteredSchema(schema=schema, layout=layout)
        for i, names in enumerate(schema.scaffolds):
            variant = f"scaffold{i}"
            registered.scaffold_sets.append(tuple(names))
            for name in names:
                registered.scaffold_variants[name] = variant
        self.schemas[schema.name] = registered
        if eager:
            self._encode_all(registered, tier or self.default_tier)
        return schema

    def _encode_all(self, registered: RegisteredSchema, tier: str) -> None:
        layout = registered.layout
        for name in layout.order:
            self._ensure_encoded(registered, name, SOLO_VARIANT, tier)
        for i, names in enumerate(registered.scaffold_sets):
            variant = f"scaffold{i}"
            layouts = [layout.module(n) for n in names]
            states = encode_scaffold(self.model, layouts)
            for n in names:
                self.store.put(
                    CacheKey(layout.schema_name, n, variant),
                    self.kv_codec.encode(states[n]),
                    tier=tier,
                )

    def _ensure_encoded(
        self, registered: RegisteredSchema, name: str, variant: str, tier: str
    ) -> tuple[ModuleKV, str]:
        """Fetch a module's states, encoding on miss. Returns (kv, tier)."""
        key = CacheKey(registered.layout.schema_name, name, variant)
        found = self.store.fetch(key)
        if found is not None:
            if found.tier == "cpu" and self.promote_on_cpu_hit:
                self.store.prefetch([key])
            return self.kv_codec.decode(found.entry.kv), found.tier
        if variant == SOLO_VARIANT:
            kv = encode_module(self.model, registered.layout.module(name))
            self.store.put(key, self.kv_codec.encode(kv), tier=tier)
            return kv, tier
        # Scaffold variants are always materialized as a set.
        index = int(variant.removeprefix("scaffold"))
        names = registered.scaffold_sets[index]
        states = encode_scaffold(
            self.model, [registered.layout.module(n) for n in names]
        )
        for n in names:
            self.store.put(
                CacheKey(registered.layout.schema_name, n, variant),
                self.kv_codec.encode(states[n]),
                tier=tier,
            )
        return states[name], tier

    # -- serving ------------------------------------------------------------------

    def serve(
        self,
        prompt: str,
        *,
        max_new_tokens: int = 32,
        sampler=None,
        stop_ids: set[int] | None = None,
        use_scaffolds: bool = True,
    ) -> ServeResult:
        """Cached inference for a PML prompt (paper Fig 2, §3.4)."""
        resolved = self._resolve(prompt)
        registered = self._registered(resolved.schema.name)
        plan = self._plan(resolved, registered)

        # Stage 1: splice cached module states together (the memcpy phase).
        start = time.perf_counter()
        cache, tier_tokens, cached_tokens = self._assemble(
            registered, plan, use_scaffolds=use_scaffolds
        )
        splice_s = time.perf_counter() - start

        # Stage 2: prefill only the uncached tokens at their schema positions.
        token_ids, positions = _merge_uncached(plan.uncached)
        reserve = len(cache) + len(token_ids) + max_new_tokens
        cache.reserve(reserve)
        start = time.perf_counter()
        logits = self.model.forward(token_ids, positions, cache)[-1]
        suffix_s = time.perf_counter() - start

        output_ids, step_times = decode_loop(
            self.model,
            cache,
            logits,
            max_new_tokens=max_new_tokens,
            next_position=plan.next_position,
            sampler=sampler,
            stop_ids=stop_ids,
        )
        return ServeResult(
            output_ids=output_ids,
            text=self.tokenizer.decode(output_ids, skip_specials=True),
            prompt_tokens=cached_tokens + len(token_ids),
            cached_tokens=cached_tokens,
            uncached_tokens=len(token_ids),
            ttft_s=splice_s + suffix_s,
            splice_s=splice_s,
            suffix_s=suffix_s,
            step_times_s=step_times,
            tier_tokens=tier_tokens,
        )

    # Friendly alias used throughout the examples.
    generate = serve

    def serve_batch(
        self,
        prompts: list[str],
        *,
        max_new_tokens: int = 32,
        sampler=None,
        stop_ids: set[int] | None = None,
    ) -> "BatchServeResult":
        """Serve a batch with paged module sharing (paper §3.4).

        Prompts selecting the same module sequence share one physical copy
        of the spliced states via refcounted pages
        (:mod:`repro.llm.paged`); each request's suffix and generated
        tokens extend a private fork (copy-on-write on the boundary page).
        Outputs are identical to serving each prompt alone.
        """
        from repro.llm.paged import PagedKVCache

        plans = []
        for prompt in prompts:
            resolved = self._resolve(prompt)
            registered = self._registered(resolved.schema.name)
            plan = self._plan(resolved, registered)
            group_key = (
                resolved.schema.name,
                tuple(
                    (name, variant)
                    for _, name, variant in self._variants_for(registered, plan, True)
                ),
                plan.recompute_tail,
            )
            plans.append((prompt, registered, plan, group_key))

        bases: dict = {}
        results: list[ServeResult] = []
        physical = duplicated = 0
        for prompt, registered, plan, group_key in plans:
            start = time.perf_counter()
            base = bases.get(group_key)
            if base is None:
                module_kvs, _ = self._gather_module_kvs(registered, plan, True)
                base = PagedKVCache.from_module_kvs(self.model.config, module_kvs)
                bases[group_key] = base
            cache = base.fork()
            cached_tokens = len(cache)
            splice_s = time.perf_counter() - start

            token_ids, positions = _merge_uncached(plan.uncached)
            start = time.perf_counter()
            logits = self.model.forward(token_ids, positions, cache)[-1]
            suffix_s = time.perf_counter() - start
            output_ids, step_times = decode_loop(
                self.model, cache, logits,
                max_new_tokens=max_new_tokens,
                next_position=plan.next_position,
                sampler=sampler, stop_ids=stop_ids,
            )
            duplicated += cache.logical_bytes()
            results.append(
                ServeResult(
                    output_ids=output_ids,
                    text=self.tokenizer.decode(output_ids, skip_specials=True),
                    prompt_tokens=cached_tokens + len(token_ids),
                    cached_tokens=cached_tokens,
                    uncached_tokens=len(token_ids),
                    ttft_s=splice_s + suffix_s,
                    splice_s=splice_s,
                    suffix_s=suffix_s,
                    step_times_s=step_times,
                )
            )
        physical = sum(base.physical_bytes() for base in bases.values())
        return BatchServeResult(
            results=results,
            physical_bytes=physical,
            duplicated_bytes=duplicated,
            shared_groups=len(bases),
        )

    def invalidate(self, schema_name: str, module_name: str | None = None) -> int:
        """Drop cached states for one module (or a whole schema) from every
        tier; the next use re-encodes. Returns the number of entries
        dropped. This is the eviction half of runtime module updates."""
        dropped = 0
        for tier in (self.store.gpu, self.store.cpu):
            for key in tier.keys():
                if key.schema != schema_name:
                    continue
                if module_name is not None and key.module != module_name:
                    continue
                tier.remove(key)
                dropped += 1
        return dropped

    def update_module_text(
        self, schema_name: str, module_name: str, new_text: str
    ) -> None:
        """Replace one module's text at runtime (paper §1: modules can be
        "update[d] during the runtime").

        The schema is re-parsed with the new text and re-laid-out; only the
        updated module is re-encoded eagerly, other modules are invalidated
        lazily if their positions shifted (same token count -> no shift ->
        their cached states stay valid and are kept).
        """
        registered = self._registered(schema_name)
        old_layout = registered.layout
        module = registered.schema.module(module_name)
        from repro.pml.ast import TextNode

        module.children = [TextNode(new_text)]
        new_layout = layout_schema(registered.schema, self.tokenizer)
        # Keep cached states whose position assignment is unchanged.
        for name in list(old_layout.modules):
            if name == module_name:
                continue
            unchanged = (
                name in new_layout.modules
                and old_layout.module(name).span_start
                == new_layout.module(name).span_start
                and len(old_layout.module(name).token_ids)
                == len(new_layout.module(name).token_ids)
            )
            if not unchanged:
                self.invalidate(schema_name, name)
        self.invalidate(schema_name, module_name)
        registered.layout = new_layout
        self._ensure_encoded(registered, module_name, SOLO_VARIANT, self.default_tier)
        # Scaffold variants embed cross-module state: always refresh.
        for i, names in enumerate(registered.scaffold_sets):
            if module_name in names:
                for n in names:
                    self.invalidate(schema_name, n)

    def start_session(self, prompt: str):
        """Open a multi-turn :class:`~repro.cache.session.GenerationSession`
        whose cached modules persist across turns."""
        from repro.cache.session import GenerationSession

        return GenerationSession(self, prompt)

    def baseline(
        self,
        prompt: str,
        *,
        max_new_tokens: int = 32,
        sampler=None,
        stop_ids: set[int] | None = None,
    ) -> GenerationResult:
        """KV-cache baseline over the *same* token content as :meth:`serve`
        (modules inlined, arguments substituted), positions ``0..n-1``."""
        resolved = self._resolve(prompt)
        registered = self._registered(resolved.schema.name)
        plan = self._plan(resolved, registered)
        sequence: list[int] = []
        for _, chunk in sorted(plan.baseline_chunks, key=lambda c: c[0]):
            sequence.extend(chunk)
        return generate(
            self.model,
            sequence,
            max_new_tokens=max_new_tokens,
            sampler=sampler,
            stop_ids=stop_ids,
        )

    def prompt_token_count(self, prompt: str) -> tuple[int, int]:
        """(cached, uncached) token counts for a prompt — what the latency
        benches feed the analytical device model."""
        resolved = self._resolve(prompt)
        registered = self._registered(resolved.schema.name)
        plan = self._plan(resolved, registered)
        uncached = sum(len(t) for t, _ in plan.uncached)
        cached = sum(
            int(np.count_nonzero(_keep_mask(layout))) for layout, _ in plan.modules
        )
        if plan.recompute_tail is not None:
            cached -= 1
        return cached, uncached

    # -- internals ------------------------------------------------------------------

    def _resolve(self, prompt: str) -> ResolvedPrompt:
        node = parse_prompt(prompt)
        return resolve(node, self._registered(node.schema).schema)

    def _registered(self, schema_name: str) -> RegisteredSchema:
        """Look up a registered schema, raising the typed error on miss."""
        try:
            return self.schemas[schema_name]
        except KeyError:
            raise UnknownSchemaError(schema_name, list(self.schemas)) from None

    def _plan(self, resolved: ResolvedPrompt, registered: RegisteredSchema) -> _Plan:
        layout = registered.layout
        selected = set(layout.always_included()) | set(resolved.selected_names())
        args_by_module = {s.name: s.args for s in resolved.selections}

        modules: list[tuple[ModuleLayout, str]] = []
        uncached: list[tuple[np.ndarray, np.ndarray]] = []
        baseline_chunks: list[tuple[int, list[int]]] = []
        occupied: list[tuple[int, int]] = []

        for name in layout.order:
            if name not in selected:
                continue
            mod = layout.module(name)
            modules.append((mod, name))
            occupied.append((mod.span_start, mod.span_end))
            baseline_chunks.append(
                (mod.span_start, self._module_chunk(mod, args_by_module.get(name, {})))
            )
            # Parameter arguments become uncached work at the slot positions.
            for slot in mod.params.values():
                value = args_by_module.get(name, {}).get(slot.name, slot.default)
                if not value:
                    continue
                ids = self.tokenizer.encode(value)
                if len(ids) > slot.length:
                    raise SchemaMismatchError(
                        f"argument for parameter {slot.name!r} of module "
                        f"{name!r} is {len(ids)} tokens; the schema allows "
                        f"{slot.length}"
                    )
                pos = mod.param_positions(slot.name)[: len(ids)]
                uncached.append((np.asarray(ids, dtype=np.int64), pos))

        # New prompt text: use the gap after its anchor if one exists,
        # otherwise append past the schema extent (paper §3.4).
        tail = layout.total_length
        for new_text in resolved.texts:
            ids = np.asarray(self.tokenizer.encode(new_text.text), dtype=np.int64)
            if len(ids) == 0:
                continue
            anchor_end = (
                layout.module(new_text.anchor).span_end if new_text.anchor else 0
            )
            if _gap_fits(anchor_end, len(ids), occupied, tail):
                start = anchor_end
            else:
                start = tail
                tail += len(ids)
            positions = np.arange(start, start + len(ids), dtype=np.int64)
            occupied.append((start, start + len(ids)))
            uncached.append((ids, positions))
            baseline_chunks.append((start, list(map(int, ids))))

        if not modules and not uncached:
            raise SchemaMismatchError(
                "the prompt selects no modules and adds no text; there is "
                "nothing to serve"
            )
        recompute_tail = None
        if not uncached:
            # Fully cached prompt: the first sampling decision still needs
            # logits, so the highest-positioned cached token is recomputed
            # as the suffix (its cached copy is skipped during assembly).
            # The token must be one that survives slot-dropping, i.e. not a
            # parameter placeholder.
            mod = max((m for m, _ in modules), key=lambda m: m.span_end)
            last = int(np.flatnonzero(_keep_mask(mod))[-1])
            recompute_tail = (mod.name, last)
            uncached.append((mod.token_ids[last : last + 1], mod.positions[last : last + 1]))

        return _Plan(
            modules=modules,
            uncached=uncached,
            baseline_chunks=baseline_chunks,
            next_position=max(tail, self._max_position(uncached, occupied)),
            recompute_tail=recompute_tail,
        )

    @staticmethod
    def _max_position(uncached, occupied) -> int:
        top = 0
        for _, positions in uncached:
            if len(positions):
                top = max(top, int(positions.max()) + 1)
        for _, end in occupied:
            top = max(top, end)
        return top

    def _module_chunk(self, mod: ModuleLayout, args: dict[str, str]) -> list[int]:
        """Module tokens with argument values spliced into their slots —
        the content a user would have sent without Prompt Cache."""
        if not mod.params:
            return list(map(int, mod.token_ids))
        pieces: list[tuple[int, list[int]]] = []
        keep = np.ones(len(mod.token_ids), dtype=bool)
        for slot in mod.params.values():
            keep[slot.offset : slot.offset + slot.length] = False
            value = args.get(slot.name, slot.default)
            ids = self.tokenizer.encode(value) if value else []
            pieces.append((slot.offset, list(map(int, ids))))
        base = [(i, [int(t)]) for i, t in enumerate(mod.token_ids) if keep[i]]
        merged = sorted(base + pieces, key=lambda p: p[0])
        return [t for _, chunk in merged for t in chunk]

    def _variants_for(
        self, registered: RegisteredSchema, plan: _Plan, use_scaffolds: bool
    ) -> list[tuple[ModuleLayout, str, str]]:
        """(layout, name, variant) for each selected module, in order."""
        selected_names = [name for _, name in plan.modules]
        scaffold_active = set()
        if use_scaffolds:
            for names in registered.scaffold_sets:
                if set(names) <= set(selected_names):
                    scaffold_active.update(names)
        return [
            (
                mod,
                name,
                registered.scaffold_variants[name]
                if name in scaffold_active
                else SOLO_VARIANT,
            )
            for mod, name in plan.modules
        ]

    def _gather_module_kvs(
        self, registered: RegisteredSchema, plan: _Plan, use_scaffolds: bool
    ) -> tuple[list[ModuleKV], dict[str, int]]:
        """Fetch (encoding on miss) the slot-dropped states of every
        selected module, in document order."""
        module_kvs: list[ModuleKV] = []
        tier_tokens: dict[str, int] = {"gpu": 0, "cpu": 0}
        for mod, name, variant in self._variants_for(registered, plan, use_scaffolds):
            kv, tier = self._ensure_encoded(registered, name, variant, self.default_tier)
            kv = drop_param_slots(kv, mod, list(mod.params.values()))
            if plan.recompute_tail is not None and plan.recompute_tail[0] == name:
                # Fully-cached prompt: skip the tail token being recomputed.
                kv = kv.slice(0, len(kv) - 1)
            tier_tokens[tier] += len(kv)
            if len(kv):
                module_kvs.append(kv)
        return module_kvs, tier_tokens

    def _assemble(
        self, registered: RegisteredSchema, plan: _Plan, use_scaffolds: bool
    ) -> tuple[KVCache, dict[str, int], int]:
        """Concatenate the selected modules' cached states into a KVCache."""
        module_kvs, tier_tokens = self._gather_module_kvs(registered, plan, use_scaffolds)

        config = self.model.config
        if not module_kvs:
            return KVCache.empty(config), tier_tokens, 0

        layers: list[LayerKV] = []
        for i in range(config.n_layers):
            keys = buffered_concat([kv.keys[i] for kv in module_kvs], axis=1)
            values = buffered_concat([kv.values[i] for kv in module_kvs], axis=1)
            positions = np.concatenate([kv.positions for kv in module_kvs])
            layers.append(LayerKV.from_arrays(keys, values, positions))
        cache = KVCache(layers)
        return cache, tier_tokens, len(cache)


def _keep_mask(mod: ModuleLayout) -> np.ndarray:
    """True for direct tokens that are not parameter placeholders."""
    keep = np.ones(len(mod.token_ids), dtype=bool)
    for slot in mod.params.values():
        keep[slot.offset : slot.offset + slot.length] = False
    return keep


def _merge_uncached(
    batches: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the uncached batches into one forward pass, position-sorted.

    Position-derived causal masking makes the order mathematically
    irrelevant, but sorting keeps traces readable and decode positions
    contiguous at the tail.
    """
    token_ids = np.concatenate([t for t, _ in batches])
    positions = np.concatenate([p for _, p in batches])
    order = np.argsort(positions, kind="stable")
    return token_ids[order], positions[order]


def _gap_fits(
    start: int, length: int, occupied: list[tuple[int, int]], tail: int
) -> bool:
    """True when [start, start+length) collides with no occupied range and
    stays inside the schema extent."""
    end = start + length
    if end > tail:
        return False
    return all(end <= lo or start >= hi for lo, hi in occupied)
