"""The Prompt Cache engine: schema registration and cached inference.

:class:`PromptCache` ties the substrates together (paper Fig 2):

1. **Register** a schema → lay out position IDs (:mod:`repro.cache.layout`)
   and optionally pre-encode every module (:mod:`repro.cache.encoder`) into
   the two-tier store (:mod:`repro.cache.storage`).
2. **Serve** a prompt → resolve it against the schema, splice the cached
   module KV states together (buffered concat, §4.2), prefill only the
   uncached tokens (parameter arguments + new text) at their schema
   positions, and decode. TTFT = splice + suffix prefill, replacing the
   full quadratic prefill (§3.4).

:meth:`PromptCache.baseline` runs the exact same token content through the
ordinary KV-cache path, which is how the accuracy and latency comparisons
pair up cached vs baseline runs.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.locks import ordered_lock
from repro.cache.encoder import (
    _arena_from_cache,
    drop_param_slots,
    encode_module,
    encode_scaffold,
)
from repro.cache.layout import ModuleLayout, SchemaLayout, layout_schema
from repro.cache.storage import CacheKey, ModuleCacheStore, SOLO_VARIANT
from repro.llm.generation import GenerationResult, decode_loop, generate
from repro.llm.sampling import GreedySampler
from repro.llm.kv import KVCache, LayerKV, ModuleKV, buffered_concat, tracked_alloc
from repro.llm.models import TransformerModel
from repro.pml.chat import ChatTemplate, template_for_architecture
from repro.pml.errors import SchemaMismatchError, UnknownSchemaError
from repro.pml.parser import parse_prompt
from repro.pml.prompt import ResolvedPrompt, resolve
from repro.pml.schema import Schema

# Optional splice sanitizers (repro.analysis.sanitize). None in
# production; installed validators see every compiled plan and layout.
_PLAN_VALIDATOR = None
_LAYOUT_VALIDATOR = None


def set_plan_validator(fn) -> None:
    """Install (or clear) a ``validator(plan, layout)`` run on every
    freshly compiled serve plan."""
    global _PLAN_VALIDATOR
    _PLAN_VALIDATOR = fn


def set_layout_validator(fn) -> None:
    """Install (or clear) a ``validator(schema, layout)`` run at schema
    registration and module update."""
    global _LAYOUT_VALIDATOR
    _LAYOUT_VALIDATOR = fn


# Reserved schema namespace for modules mined from live traffic by
# repro.reuse (never a valid PML schema name — parser rejects it).
DISCOVERED_SCHEMA = "__discovered__"


@dataclass(frozen=True)
class DiscoveredModule:
    """A prompt segment promoted from the reuse trie (ISSUE 6).

    Covers tokens ``[start, end)`` of every prompt that begins with the
    promoted prefix; ``token_ids`` is the covered slice. Its cached KV is
    encoded conditioned on the *true* preceding tokens ``[0, start)``
    (the promoted ancestor chain), so splicing the chain and prefilling
    the remainder reproduces a full prefill bit-exactly under causal
    attention — the byte-identity guarantee discovery rides on.
    """

    name: str
    start: int
    end: int
    token_ids: tuple[int, ...]


@dataclass
class RegisteredSchema:
    schema: Schema
    layout: SchemaLayout
    scaffold_variants: dict[str, str] = field(default_factory=dict)
    # module name -> scaffold variant id covering it (used when the whole
    # scaffold set is imported)
    scaffold_sets: list[tuple[str, ...]] = field(default_factory=list)


@dataclass
class ServeResult:
    """Cached-inference outcome plus the latency/occupancy breakdown."""

    output_ids: list[int]
    text: str
    prompt_tokens: int
    cached_tokens: int
    uncached_tokens: int
    ttft_s: float
    splice_s: float  # cache lookup + KV concatenation ("memcpy")
    suffix_s: float  # uncached-token prefill
    step_times_s: list[float] = field(default_factory=list)
    tier_tokens: dict[str, int] = field(default_factory=dict)

    @property
    def ttst_s(self) -> float:
        return float(np.mean(self.step_times_s)) if self.step_times_s else 0.0


@dataclass
class BatchServeResult:
    """Batch outcome plus the §3.4 memory picture."""

    results: list[ServeResult]
    physical_bytes: int  # live page storage (shared modules counted once)
    duplicated_bytes: int  # what per-request private caches would cost
    shared_groups: int  # distinct module sequences in the batch

    @property
    def memory_savings(self) -> float:
        if self.duplicated_bytes == 0:
            return 0.0
        return 1.0 - self.physical_bytes / self.duplicated_bytes

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


class ServeStream:
    """One request's serve, resumable between prefill chunks and decode steps.

    The whole-request paths (:meth:`PromptCache.serve` / ``serve_text``)
    splice, prefill, and decode to completion inside one call; a stream
    breaks the same work into scheduler-sized pieces so the
    iteration-level runtime (:mod:`repro.server.scheduler`) can
    interleave many requests over one engine:

    - construction performs the splice (in paged mode, a fork of the
      shared pre-spliced base — the stream holds the fork, and its
      mirror lease, until it is finished or aborted);
    - :meth:`prefill_step` forwards up to a budget of uncached prompt
      tokens, capturing first-token logits when the prompt completes;
    - :meth:`next_token` samples one token in :func:`decode_loop`'s
      sample-then-check order, and the scheduler feeds the batched
      forward's logits row back through :meth:`set_logits`;
    - :meth:`finish` releases the fork and assembles the
      :class:`ServeResult`; :meth:`abort` releases it on failure or
      shutdown without a result.

    Driven to completion with a prefill budget covering the whole suffix,
    a stream's greedy outputs are byte-identical to the one-call paths —
    the splice and the per-token forwards are the same arithmetic, only
    the loop structure differs.
    """

    def __init__(
        self,
        pc: "PromptCache",
        *,
        cache,
        owns_fork: bool,
        pending_ids: np.ndarray,
        pending_positions: np.ndarray,
        next_position: int,
        cached_tokens: int,
        tier_tokens: dict[str, int],
        max_new_tokens: int,
        sampler,
        stop_ids: set[int] | None,
        splice_s: float,
        shared_group: object | None = None,
        shared_len: int = 0,
    ) -> None:
        self.pc = pc
        self.cache = cache
        self._owns_fork = owns_fork
        # ChunkAttention grouping key: the _SplicedBase this stream's
        # paged cache was forked from (identity-compared — two streams
        # holding the same base object share its mirror image bytes) and
        # the spliced-prefix length those shared tokens cover. None for
        # non-paged / undiscovered prompts: never grouped.
        self.shared_group = shared_group
        self.shared_len = shared_len
        self._pending_ids = pending_ids
        self._pending_positions = pending_positions
        self._offset = 0
        self._position = next_position
        self.cached_tokens = cached_tokens
        self.tier_tokens = tier_tokens
        self.max_new_tokens = max_new_tokens
        self.sampler = sampler or GreedySampler()
        self.stop_ids = stop_ids or set()
        self.splice_s = splice_s
        self.suffix_s = 0.0
        self.step_times_s: list[float] = []
        self.output_ids: list[int] = []
        self.logits: np.ndarray | None = None
        self.done = False
        self._closed = False
        self._reserved = False

    # -- state -------------------------------------------------------------------

    @property
    def prompt_tokens(self) -> int:
        return self.cached_tokens + len(self._pending_ids)

    @property
    def prefill_remaining(self) -> int:
        """Uncached prompt tokens not yet forwarded."""
        return len(self._pending_ids) - self._offset

    @property
    def decoding(self) -> bool:
        """Prefill complete, more tokens to sample."""
        return self.logits is not None and not self.done

    @property
    def decode_position(self) -> int:
        """Position ID the next decoded token's forward must use."""
        return self._position

    # -- prefill -----------------------------------------------------------------

    def prefill_step(self, max_tokens: int) -> int:
        """Forward up to ``max_tokens`` uncached prompt tokens at their
        planned positions; returns the number consumed. When the last
        chunk lands, the final token's logits become the first sampling
        decision (and a zero-budget request retires immediately)."""
        remaining = self.prefill_remaining
        take = min(max_tokens, remaining)
        if take <= 0:
            return 0
        if not self._reserved:
            self.cache.reserve(len(self.cache) + remaining + self.max_new_tokens)
            self._reserved = True
        chunk = slice(self._offset, self._offset + take)
        start = time.perf_counter()
        logits = self.pc.model.forward(
            self._pending_ids[chunk], self._pending_positions[chunk], self.cache
        )
        self.suffix_s += time.perf_counter() - start
        self._offset += take
        if self.prefill_remaining == 0:
            self.logits = logits[-1]
            if self.max_new_tokens <= 0:
                self.done = True
        return take

    # -- decode ------------------------------------------------------------------

    def next_token(self) -> tuple[int, bool]:
        """Sample one token (:func:`decode_loop`'s sample-then-check
        order). Returns ``(token, needs_forward)`` — ``needs_forward``
        is False when the stream just retired on a stop token or its
        budget, in which case it must not join the batched forward."""
        assert self.decoding, "next_token on a stream that is not decoding"
        token = self.sampler(self.logits)
        self.output_ids.append(token)
        if token in self.stop_ids or len(self.output_ids) >= self.max_new_tokens:
            self.done = True
        return token, not self.done

    def set_logits(self, row: np.ndarray, step_s: float) -> None:
        """Feed back one batched decode forward: the logits row for this
        stream's token, and the wall-clock share charged to its TTST."""
        self.logits = row
        self._position += 1
        self.step_times_s.append(step_s)

    # -- completion --------------------------------------------------------------

    def abort(self) -> None:
        """Release the paged fork (idempotent) without building a result
        — the failure/shutdown path."""
        if not self._closed:
            self._closed = True
            if self._owns_fork:
                self.pc._free_fork(self.cache)

    def finish(self) -> ServeResult:
        """Release resources and assemble the :class:`ServeResult` —
        same field semantics as :meth:`PromptCache.serve`."""
        self.abort()
        return ServeResult(
            output_ids=self.output_ids,
            text=self.pc.tokenizer.decode(self.output_ids, skip_specials=True),
            prompt_tokens=self.prompt_tokens,
            cached_tokens=self.cached_tokens,
            uncached_tokens=len(self._pending_ids),
            ttft_s=self.splice_s + self.suffix_s,
            splice_s=self.splice_s,
            suffix_s=self.suffix_s,
            step_times_s=self.step_times_s,
            tier_tokens=self.tier_tokens,
        )


@dataclass
class _Plan:
    """Everything needed to serve one resolved prompt."""

    # (layout, kv-after-slot-drop-pending, variant) in document order
    modules: list[tuple[ModuleLayout, str]]
    # Uncached work: (token_ids, positions) batches for args + new text
    uncached: list[tuple[np.ndarray, np.ndarray]]
    # Baseline chunks: (sort_key, token_ids) reproducing identical content
    baseline_chunks: list[tuple[int, list[int]]]
    next_position: int  # first decode position
    # Fully-cached prompts recompute their highest-positioned token to get
    # first logits: (module name, direct-sequence index) or None.
    recompute_tail: tuple[str, int] | None = None


@dataclass
class PlanCacheStats:
    """Counters for the compiled-plan and spliced-base caches."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    base_hits: int = 0  # serve() reused an already-spliced paged base
    base_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _CompiledPlan:
    """Memoized parse → resolve → plan for one canonical prompt source.

    Everything here is a pure function of the prompt text and the schema
    layout, so entries stay valid until ``register_schema`` /
    ``invalidate`` / ``update_module_text`` touches the schema.
    """

    schema_name: str
    registered: RegisteredSchema
    plan: _Plan
    merged_uncached: tuple[np.ndarray, np.ndarray]
    module_names: frozenset[str]
    baseline_sequence: list[int] | None = None  # lazy, for baseline()


@dataclass
class _SplicedBase:
    """A shared, mirrored paged image of one spliced module sequence.

    ``entries`` records each contributing store key with its post-drop
    token count so a hit can be re-validated against the store (keeping
    hit statistics, tier occupancy, and CPU-hit promotion identical to
    the slow path) and rebuilt if any backing entry disappeared.
    """

    cache: "PagedKVCache"  # noqa: F821 — imported lazily in the fork path
    entries: list[tuple[CacheKey, int]]
    cached_tokens: int
    module_names: frozenset[str]


class PromptCache:
    """Modular attention reuse on top of a NumPy transformer.

    Parameters
    ----------
    model, tokenizer:
        The inference engine and its tokenizer.
    store:
        Two-tier module store; defaults to unbounded tiers.
    template:
        Chat template compiled into role tags; defaults to the model
        architecture's native template.
    default_tier:
        Where newly encoded modules are stored (``"gpu"`` or ``"cpu"``).
    splice_mode:
        How :meth:`serve` splices cached states: ``"paged"`` (default)
        forks a shared, mirrored paged base — repeated prompts skip the
        splice memcpy entirely; ``"arena"`` builds a private flat cache
        with one layer-major arena copy per side; ``"legacy"`` is the
        original per-layer buffered-concat path (kept for benchmarking).
    plan_cache_size / base_cache_size:
        LRU bounds on the compiled-plan and spliced-base caches.
    encode_workers:
        Default process-pool width for eager schema encoding; ``0``/``1``
        keeps the sequential path. Individual ``register_schema`` calls
        can override with their own ``workers=``.
    encode_metrics:
        Optional metrics registry handed to transient
        :class:`~repro.cache.parallel.ParallelEncoder` instances (the
        serving runtime injects its own registry here).
    """

    def __init__(
        self,
        model: TransformerModel,
        tokenizer,
        store: ModuleCacheStore | None = None,
        template: ChatTemplate | None = None,
        default_tier: str = "gpu",
        kv_codec=None,
        promote_on_cpu_hit: bool = False,
        splice_mode: str = "paged",
        plan_cache_size: int = 256,
        base_cache_size: int = 8,
        encode_workers: int = 0,
        encode_metrics=None,
    ) -> None:
        from repro.cache.compress import IdentityCodec, codec as codec_by_name

        self.model = model
        self.tokenizer = tokenizer
        self.store = store or ModuleCacheStore()
        self.template = template or template_for_architecture(model.config.architecture)
        self.default_tier = default_tier
        # Promote modules served from host memory back into the GPU tier
        # (the simulator's fetch path and the paper's §3.2.3 prefetch);
        # keeps hot modules on the fast route when the GPU tier is bounded.
        self.promote_on_cpu_hit = promote_on_cpu_hit
        if kv_codec is None:
            self.kv_codec = IdentityCodec()
        elif isinstance(kv_codec, str):
            self.kv_codec = codec_by_name(kv_codec)
        else:
            self.kv_codec = kv_codec
        self.schemas: dict[str, RegisteredSchema] = {}
        if splice_mode not in ("paged", "arena", "legacy"):
            raise ValueError(
                f"unknown splice_mode {splice_mode!r}; "
                "expected 'paged', 'arena' or 'legacy'"
            )
        self.splice_mode = splice_mode
        self.plan_cache_size = plan_cache_size
        self.base_cache_size = base_cache_size
        self.encode_workers = encode_workers
        self.encode_metrics = encode_metrics
        self._parallel_encoder = None
        # Guards the two LRU maps, their stats, and paged-base fork/free
        # (page refcounts are not thread-safe on their own).
        self._fastpath_lock = ordered_lock("engine.fastpath", after=("store",))
        self.plan_stats = PlanCacheStats()  # guarded-by: _fastpath_lock
        self._plan_cache: OrderedDict[str, _CompiledPlan] = OrderedDict()  # guarded-by: _fastpath_lock
        self._bases: OrderedDict[tuple, _SplicedBase] = OrderedDict()  # guarded-by: _fastpath_lock
        self._plan_listeners: list = []
        # Schema-free reuse discovery (repro.reuse): attach_discovery()
        # installs a miner; _discovered maps module name -> span.
        self.discovery = None
        self._discovered: dict[str, DiscoveredModule] = {}  # guarded-by: _fastpath_lock
        # Plan-staleness fix: compiled plans and spliced bases must die
        # with the last resident copy of any module they reference.
        # register/invalidate/update already handle their paths; this
        # listener covers capacity/TTL eviction inside the store itself.
        for tier_ in (self.store.gpu, self.store.cpu):
            tier_.add_evict_listener(self._on_store_evict)

    # -- schema management -----------------------------------------------------

    def register_schema(
        self,
        source: str | Schema,
        eager: bool = True,
        tier: str | None = None,
        workers: int | None = None,
    ) -> Schema:
        """Parse, lay out, and (eagerly) encode a schema's modules.

        Eager registration mirrors the paper's flow — "Prompt Cache
        populates its cache when a schema is loaded" (Fig 1c) — so the
        first derived prompt already hits warm states. Lazy registration
        encodes each module on first use instead. ``workers`` overrides
        the engine's ``encode_workers`` for this schema; values above 1
        fan the independent module encodes across a process pool
        (:class:`~repro.cache.parallel.ParallelEncoder`) with
        bit-identical results.
        """
        schema = source if isinstance(source, Schema) else Schema.parse(source, self.template)
        layout = layout_schema(schema, self.tokenizer)
        if layout.total_length >= self.model.config.max_position:
            raise SchemaMismatchError(
                f"schema {schema.name!r} needs {layout.total_length} positions "
                f"but the model supports {self.model.config.max_position}"
            )
        if _LAYOUT_VALIDATOR is not None:
            _LAYOUT_VALIDATOR(schema, layout)
        registered = RegisteredSchema(schema=schema, layout=layout)
        for i, names in enumerate(schema.scaffolds):
            variant = f"scaffold{i}"
            registered.scaffold_sets.append(tuple(names))
            for name in names:
                registered.scaffold_variants[name] = variant
        self.schemas[schema.name] = registered
        # (Re-)registration replaces the layout: compiled plans and
        # spliced bases derived from the old one are stale.
        self._evict_compiled(schema.name)
        if eager:
            self._encode_all(registered, tier or self.default_tier, workers=workers)
        return schema

    def set_parallel_encoder(self, encoder) -> None:
        """Attach (or detach, with ``None``) a shared
        :class:`~repro.cache.parallel.ParallelEncoder`, so many schema
        registrations reuse one warm process pool. The caller owns the
        encoder's lifetime (``close()``)."""
        self._parallel_encoder = encoder

    # -- compiled-plan cache -----------------------------------------------------

    def add_plan_cache_listener(self, fn) -> None:
        """Register an observer called with each plan-cache event:
        ``"hit"``, ``"miss"`` or ``"invalidation"`` (one call per evicted
        plan). The serving runtime uses this to export counters."""
        self._plan_listeners.append(fn)

    def plan_cache_stats(self) -> PlanCacheStats:
        with self._fastpath_lock:
            return self.plan_stats

    def _notify_plan(self, event: str) -> None:
        for fn in self._plan_listeners:
            fn(event)

    def _compiled(self, prompt: str) -> _CompiledPlan:
        """Memoized parse → resolve → plan, keyed by canonical source."""
        source = prompt.strip()
        with self._fastpath_lock:
            entry = self._plan_cache.get(source)
            if entry is not None:
                self._plan_cache.move_to_end(source)
                self.plan_stats.hits += 1
        if entry is not None:
            self._notify_plan("hit")
            return entry
        resolved = self._resolve(prompt)
        registered = self._registered(resolved.schema.name)
        plan = self._plan(resolved, registered)
        entry = _CompiledPlan(
            schema_name=resolved.schema.name,
            registered=registered,
            plan=plan,
            merged_uncached=_merge_uncached(plan.uncached),
            module_names=frozenset(name for _, name in plan.modules),
        )
        with self._fastpath_lock:
            self.plan_stats.misses += 1
            self._plan_cache[source] = entry
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        self._notify_plan("miss")
        return entry

    def _evict_compiled(
        self, schema_name: str, module_name: str | None = None
    ) -> int:
        """Drop compiled plans and spliced bases touching a schema (or one
        of its modules). Returns the number of plans invalidated."""
        with self._fastpath_lock:
            doomed = [
                source
                for source, entry in self._plan_cache.items()
                if entry.schema_name == schema_name
                and (module_name is None or module_name in entry.module_names)
            ]
            for source in doomed:
                del self._plan_cache[source]
            doomed_bases = [
                key
                for key, base in self._bases.items()
                if key[0] == schema_name
                and (module_name is None or module_name in base.module_names)
            ]
            for key in doomed_bases:
                self._bases.pop(key).cache.free()
            self.plan_stats.invalidations += len(doomed)
        for _ in doomed:
            self._notify_plan("invalidation")
        return len(doomed)

    def _encode_all(
        self, registered: RegisteredSchema, tier: str, workers: int | None = None
    ) -> None:
        layout = registered.layout
        workers = self.encode_workers if workers is None else workers
        encoder = self._parallel_encoder
        # Any explicit worker count (even 1) routes through the encode
        # plane — a 1-worker encoder runs sequentially in-process but
        # still meters warm-up and job durations.
        if encoder is not None or workers >= 1:
            self._encode_all_pooled(registered, tier, workers, encoder)
            return
        for name in layout.order:
            self._ensure_encoded(registered, name, SOLO_VARIANT, tier)
        for i, names in enumerate(registered.scaffold_sets):
            variant = f"scaffold{i}"
            layouts = [layout.module(n) for n in names]
            states = encode_scaffold(self.model, layouts)
            for n in names:
                self.store.put(
                    CacheKey(layout.schema_name, n, variant),
                    self.kv_codec.encode(states[n]),
                    tier=tier,
                )

    def _encode_all_pooled(
        self, registered: RegisteredSchema, tier: str, workers, encoder
    ) -> None:
        """Eager encode through a :class:`ParallelEncoder`.

        Mirrors the sequential path exactly: solo modules already in the
        store are skipped (``_ensure_encoded`` semantics), scaffold sets
        are always refreshed, and entries land in the same order.
        """
        from repro.cache.parallel import ParallelEncoder

        layout = registered.layout
        transient = encoder is None
        if transient:
            encoder = ParallelEncoder(
                self.model, workers=workers, metrics=self.encode_metrics
            )
        try:
            present = {
                name
                for name in layout.order
                if CacheKey(layout.schema_name, name, SOLO_VARIANT) in self.store
            }
            states = encoder.encode_schema(
                layout, registered.scaffold_sets, skip_solo=present
            )
            for (name, variant), kv in states.items():
                self.store.put(
                    CacheKey(layout.schema_name, name, variant),
                    self.kv_codec.encode(kv),
                    tier=tier,
                )
        finally:
            if transient:
                encoder.close()

    def _observe_reencode(self, key: CacheKey, kv: ModuleKV, seconds: float) -> None:
        """Report a measured module re-encode to stores that price tiers
        (the fabric's cost model treats re-encode as the most expensive
        tier). Duck-typed: plain two-tier stores have no observer."""
        observe = getattr(self.store, "observe_reencode", None)
        if observe is not None:
            observe(key, len(kv), seconds)

    def _ensure_encoded(
        self, registered: RegisteredSchema, name: str, variant: str, tier: str
    ) -> tuple[ModuleKV, str]:
        """Fetch a module's states, encoding on miss. Returns (kv, tier)."""
        key = CacheKey(registered.layout.schema_name, name, variant)
        found = self.store.fetch(key)
        if found is not None:
            if found.tier == "cpu" and self.promote_on_cpu_hit:
                self.store.prefetch([key])
            return self.kv_codec.decode(found.entry.kv), found.tier
        if variant == SOLO_VARIANT:
            started = time.perf_counter()
            kv = encode_module(self.model, registered.layout.module(name))
            self._observe_reencode(key, kv, time.perf_counter() - started)
            self.store.put(key, self.kv_codec.encode(kv), tier=tier)
            return kv, tier
        # Scaffold variants are always materialized as a set.
        index = int(variant.removeprefix("scaffold"))
        names = registered.scaffold_sets[index]
        states = encode_scaffold(
            self.model, [registered.layout.module(n) for n in names]
        )
        for n in names:
            self.store.put(
                CacheKey(registered.layout.schema_name, n, variant),
                self.kv_codec.encode(states[n]),
                tier=tier,
            )
        return states[name], tier

    # -- serving ------------------------------------------------------------------

    def serve(
        self,
        prompt: str,
        *,
        max_new_tokens: int = 32,
        sampler=None,
        stop_ids: set[int] | None = None,
        use_scaffolds: bool = True,
    ) -> ServeResult:
        """Cached inference for a PML prompt (paper Fig 2, §3.4)."""
        compiled = self._compiled(prompt)
        registered, plan = compiled.registered, compiled.plan
        token_ids, positions = compiled.merged_uncached

        # Stage 1: splice cached module states together (the memcpy phase).
        # In "paged" mode this forks a shared pre-spliced base — on a base
        # hit there is no memcpy at all, just refcount bumps.
        release = None
        start = time.perf_counter()
        if self.splice_mode == "paged":
            cache, tier_tokens, cached_tokens, _base = self._fork_base(
                registered, plan, use_scaffolds
            )
            release = cache
        else:
            cache, tier_tokens, cached_tokens = self._assemble(
                registered, plan, use_scaffolds=use_scaffolds,
                extra_capacity=len(token_ids) + max_new_tokens,
            )
        try:
            splice_s = time.perf_counter() - start
            # Stage 2: prefill only the uncached tokens at their positions.
            reserve = len(cache) + len(token_ids) + max_new_tokens
            cache.reserve(reserve)
            start = time.perf_counter()
            logits = self.model.forward(token_ids, positions, cache)[-1]
            suffix_s = time.perf_counter() - start

            output_ids, step_times = decode_loop(
                self.model,
                cache,
                logits,
                max_new_tokens=max_new_tokens,
                next_position=plan.next_position,
                sampler=sampler,
                stop_ids=stop_ids,
            )
        finally:
            if release is not None:
                self._free_fork(release)
        return ServeResult(
            output_ids=output_ids,
            text=self.tokenizer.decode(output_ids, skip_specials=True),
            prompt_tokens=cached_tokens + len(token_ids),
            cached_tokens=cached_tokens,
            uncached_tokens=len(token_ids),
            ttft_s=splice_s + suffix_s,
            splice_s=splice_s,
            suffix_s=suffix_s,
            step_times_s=step_times,
            tier_tokens=tier_tokens,
        )

    # Friendly alias used throughout the examples.
    generate = serve

    def serve_batch(
        self,
        prompts: list[str],
        *,
        max_new_tokens: int = 32,
        sampler=None,
        stop_ids: set[int] | None = None,
    ) -> "BatchServeResult":
        """Serve a batch with paged module sharing (paper §3.4).

        Prompts selecting the same module sequence share one physical copy
        of the spliced states via refcounted pages
        (:mod:`repro.llm.paged`); each request's suffix and generated
        tokens extend a private fork (copy-on-write on the boundary page).
        Outputs are identical to serving each prompt alone.
        """
        compiled_plans = [self._compiled(prompt) for prompt in prompts]

        forks: list = []
        group_keys: set[tuple] = set()
        results: list[ServeResult] = []
        duplicated = 0
        physical = 0
        try:
            for compiled in compiled_plans:
                registered, plan = compiled.registered, compiled.plan
                start = time.perf_counter()
                cache, tier_tokens, cached_tokens, _base = self._fork_base(
                    registered, plan, True
                )
                forks.append(cache)
                group_keys.add(self._base_key(registered, plan, True))
                splice_s = time.perf_counter() - start

                token_ids, positions = compiled.merged_uncached
                start = time.perf_counter()
                logits = self.model.forward(token_ids, positions, cache)[-1]
                suffix_s = time.perf_counter() - start
                output_ids, step_times = decode_loop(
                    self.model, cache, logits,
                    max_new_tokens=max_new_tokens,
                    next_position=plan.next_position,
                    sampler=sampler, stop_ids=stop_ids,
                )
                duplicated += cache.logical_bytes()
                results.append(
                    ServeResult(
                        output_ids=output_ids,
                        text=self.tokenizer.decode(output_ids, skip_specials=True),
                        prompt_tokens=cached_tokens + len(token_ids),
                        cached_tokens=cached_tokens,
                        uncached_tokens=len(token_ids),
                        ttft_s=splice_s + suffix_s,
                        splice_s=splice_s,
                        suffix_s=suffix_s,
                        step_times_s=step_times,
                        tier_tokens=tier_tokens,
                    )
                )
            # Measure the memory picture while every fork is still live,
            # then release them (returning the shared mirrors' leases).
            with self._fastpath_lock:
                physical = sum(
                    self._bases[key].cache.physical_bytes()
                    for key in group_keys
                    if key in self._bases
                )
        finally:
            for cache in forks:
                self._free_fork(cache)
        return BatchServeResult(
            results=results,
            physical_bytes=physical,
            duplicated_bytes=duplicated,
            shared_groups=len(group_keys),
        )

    def open_stream(
        self,
        prompt: str,
        *,
        max_new_tokens: int = 32,
        sampler=None,
        stop_ids: set[int] | None = None,
        use_scaffolds: bool = True,
    ) -> ServeStream:
        """Begin a resumable serve for a PML prompt.

        The splice happens here (paged fork or arena assembly, exactly
        as :meth:`serve` chooses); prefill chunks and decode steps are
        driven by the caller through the returned :class:`ServeStream`.
        The iteration-level scheduler's entry point.
        """
        compiled = self._compiled(prompt)
        registered, plan = compiled.registered, compiled.plan
        token_ids, positions = compiled.merged_uncached

        owns_fork = False
        release = None  # the fork to free if we unwind before handing it over
        shared_group = None
        shared_len = 0
        start = time.perf_counter()
        if self.splice_mode == "paged":
            cache, tier_tokens, cached_tokens, shared_group = self._fork_base(
                registered, plan, use_scaffolds
            )
            shared_len = len(cache)  # the spliced prefix every fork shares
            owns_fork = True
            release = cache
        else:
            cache, tier_tokens, cached_tokens = self._assemble(
                registered, plan, use_scaffolds=use_scaffolds,
                extra_capacity=len(token_ids) + max_new_tokens,
            )
        try:
            splice_s = time.perf_counter() - start
            return ServeStream(
                self,
                cache=cache,
                owns_fork=owns_fork,
                pending_ids=token_ids,
                pending_positions=positions,
                next_position=plan.next_position,
                cached_tokens=cached_tokens,
                tier_tokens=tier_tokens,
                max_new_tokens=max_new_tokens,
                sampler=sampler,
                stop_ids=stop_ids,
                splice_s=splice_s,
                shared_group=shared_group,
                shared_len=shared_len,
            )
        except BaseException:
            # The stream owns the fork only once constructed; anything
            # that unwinds before then must give the pages back.
            if release is not None:
                self._free_fork(release)
            raise

    def open_text_stream(
        self,
        text: str,
        *,
        max_new_tokens: int = 32,
        sampler=None,
        stop_ids: set[int] | None = None,
        observe: bool = True,
    ) -> ServeStream:
        """Begin a resumable serve for schema-free raw text — the
        streaming mirror of :meth:`serve_text`: the prompt is observed by
        the discovery miner, any promoted prefix chain is spliced from
        cache here, and only the remainder is left for prefill chunks."""
        ids = self.tokenizer.encode(text)
        if not ids:
            raise ValueError("open_text_stream needs at least one prompt token")
        if self.discovery is not None and observe:
            self.discovery.observe(ids)
        n = len(ids)
        chain = self._match_discovered(ids) if self.discovery is not None else []
        trim = bool(chain) and chain[-1].end >= n
        cached = min(chain[-1].end, n - 1) if chain else 0

        release = None  # the fork to free if we unwind before handing it over
        shared_group = None
        shared_len = 0
        if cached <= 0:
            cached = 0
            cache = self.model.new_cache(capacity=n + max_new_tokens)
            owns_fork = False
            tier_tokens = {"gpu": 0, "cpu": 0}
            splice_s = 0.0
        else:
            start = time.perf_counter()
            cache, tier_tokens, _key, shared_group = self._fork_text_base(
                chain, trim, ids
            )
            shared_len = len(cache)
            owns_fork = True
            release = cache
        try:
            if owns_fork:
                splice_s = time.perf_counter() - start
            return ServeStream(
                self,
                cache=cache,
                owns_fork=owns_fork,
                pending_ids=np.asarray(ids[cached:], dtype=np.int64),
                pending_positions=np.arange(cached, n, dtype=np.int64),
                next_position=n,
                cached_tokens=cached,
                tier_tokens=tier_tokens,
                max_new_tokens=max_new_tokens,
                sampler=sampler,
                stop_ids=stop_ids,
                splice_s=splice_s,
                shared_group=shared_group,
                shared_len=shared_len,
            )
        except BaseException:
            if release is not None:
                self._free_fork(release)
            raise

    def invalidate(self, schema_name: str, module_name: str | None = None) -> int:
        """Drop cached states for one module (or a whole schema) from every
        tier; the next use re-encodes. Returns the number of entries
        dropped. This is the eviction half of runtime module updates.

        Compiled plans and spliced bases referencing the module are
        dropped too — serving a stale plan would be a silent correctness
        bug."""
        self._evict_compiled(schema_name, module_name)
        return self.store.remove_matching(schema_name, module_name)

    def update_module_text(
        self, schema_name: str, module_name: str, new_text: str
    ) -> None:
        """Replace one module's text at runtime (paper §1: modules can be
        "update[d] during the runtime").

        The schema is re-parsed with the new text and re-laid-out; only the
        updated module is re-encoded eagerly, other modules are invalidated
        lazily if their positions shifted (same token count -> no shift ->
        their cached states stay valid and are kept).
        """
        registered = self._registered(schema_name)
        # The layout is about to change: every compiled plan and spliced
        # base for this schema is stale regardless of which modules shift.
        self._evict_compiled(schema_name)
        old_layout = registered.layout
        module = registered.schema.module(module_name)
        from repro.pml.ast import TextNode

        module.children = [TextNode(new_text)]
        new_layout = layout_schema(registered.schema, self.tokenizer)
        if _LAYOUT_VALIDATOR is not None:
            _LAYOUT_VALIDATOR(registered.schema, new_layout)
        # Keep cached states whose position assignment is unchanged.
        for name in list(old_layout.modules):
            if name == module_name:
                continue
            unchanged = (
                name in new_layout.modules
                and old_layout.module(name).span_start
                == new_layout.module(name).span_start
                and len(old_layout.module(name).token_ids)
                == len(new_layout.module(name).token_ids)
            )
            if not unchanged:
                self.invalidate(schema_name, name)
        self.invalidate(schema_name, module_name)
        registered.layout = new_layout
        self._ensure_encoded(registered, module_name, SOLO_VARIANT, self.default_tier)
        # Scaffold variants embed cross-module state: always refresh.
        for i, names in enumerate(registered.scaffold_sets):
            if module_name in names:
                for n in names:
                    self.invalidate(schema_name, n)

    # -- schema-free reuse discovery (repro.reuse, ISSUE 6) ----------------------

    def attach_discovery(self, config=None, clock=None):
        """Attach a :class:`~repro.reuse.miner.ReuseMiner` so schema-free
        prompts served through :meth:`serve_text` are mined for shared
        prefixes and hot ones are cached as discovered modules. Returns
        the miner (for stats/tuning); pass ``config`` to set thresholds."""
        import time as _time

        from repro.reuse.miner import ReuseMiner

        self.discovery = ReuseMiner(
            self, config, clock=clock if clock is not None else _time.monotonic
        )
        return self.discovery

    def register_discovered_module(
        self, name: str, prefix_tokens, start: int, ancestors=()
    ) -> DiscoveredModule:
        """Engine hook for the miner: cache tokens ``[start, end)`` of a
        promoted prefix as a synthetic module.

        ``prefix_tokens`` is the full path from position 0 (so the KV can
        be conditioned on the true preceding context); ``ancestors`` are
        the already-registered modules tiling ``[0, start)`` — when all
        are still resident their KV is spliced so only the extension is
        forwarded, otherwise the whole prefix is re-forwarded once.
        """
        end = len(prefix_tokens)
        if not 0 <= start < end:
            raise ValueError(f"invalid segment [{start}, {end})")
        kv = self._encode_segment(tuple(prefix_tokens), start, end, tuple(ancestors))
        self.store.put(
            CacheKey(DISCOVERED_SCHEMA, name, SOLO_VARIANT),
            self.kv_codec.encode(kv),
            tier=self.default_tier,
        )
        segment = DiscoveredModule(
            name=name,
            start=start,
            end=end,
            token_ids=tuple(int(t) for t in prefix_tokens[start:end]),
        )
        with self._fastpath_lock:
            self._discovered[name] = segment
        return segment

    def unregister_discovered_module(self, name: str, reason: str | None = None) -> int:
        """Demote a discovered module (trie eviction, operator request):
        drop its store entries and every spliced base referencing it."""
        with self._fastpath_lock:
            self._discovered.pop(name, None)
        self._evict_compiled(DISCOVERED_SCHEMA, name)
        return self.store.remove_matching(DISCOVERED_SCHEMA, name)

    def discovered_modules(self) -> list[DiscoveredModule]:
        """Currently registered discovered modules (shallowest first)."""
        with self._fastpath_lock:
            return sorted(self._discovered.values(), key=lambda s: s.end)

    def _encode_segment(
        self, token_ids: tuple[int, ...], start: int, end: int, ancestors: tuple
    ) -> ModuleKV:
        """KV states for tokens ``[start, end)`` conditioned on the true
        prefix ``[0, start)`` — bit-exact rows of a full prefill."""
        positions = np.arange(start, end, dtype=np.int64)
        if start:
            chain_kvs = self._ancestor_kvs(ancestors, start)
            if chain_kvs is not None:
                cache = _arena_splice(
                    self.model.config, chain_kvs, extra_capacity=end - start
                )
                self.model.forward(
                    np.asarray(token_ids[start:end], dtype=np.int64),
                    positions, cache,
                )
                return _arena_from_cache(cache, start, end, positions)
        cache = self.model.new_cache(capacity=end)
        self.model.forward(
            np.asarray(token_ids[:end], dtype=np.int64),
            np.arange(end, dtype=np.int64), cache,
        )
        return _arena_from_cache(cache, start, end, positions)

    def _ancestor_kvs(self, ancestors: tuple, start: int) -> list[ModuleKV] | None:
        """Resident KV chain tiling ``[0, start)``, or None (fall back to
        re-forwarding the prefix)."""
        if not ancestors:
            return None
        kvs: list[ModuleKV] = []
        covered = 0
        for name in ancestors:
            found = self.store.fetch(CacheKey(DISCOVERED_SCHEMA, name, SOLO_VARIANT))
            if found is None:
                return None
            kv = self.kv_codec.decode(found.entry.kv)
            kvs.append(kv)
            covered += len(kv)
        return kvs if covered == start else None

    def serve_text(
        self,
        text: str,
        *,
        max_new_tokens: int = 32,
        sampler=None,
        stop_ids: set[int] | None = None,
        observe: bool = True,
    ) -> ServeResult:
        """Schema-free cached inference over raw text.

        Without discovery this is exactly the KV-cache baseline
        (:func:`~repro.llm.generation.generate`). With a miner attached,
        the prompt is observed (feeding promotion) and any promoted
        prefix chain is spliced from cache, with only the remainder
        prefilled — outputs are byte-identical either way.
        """
        ids = self.tokenizer.encode(text)
        if not ids:
            raise ValueError("serve_text needs at least one prompt token")
        if self.discovery is not None and observe:
            self.discovery.observe(ids)
        result, _, _ = self._serve_text_one(ids, max_new_tokens, sampler, stop_ids)
        return result

    def serve_text_batch(
        self,
        texts: list[str],
        *,
        max_new_tokens: int = 32,
        sampler=None,
        stop_ids: set[int] | None = None,
        observe: bool = True,
    ) -> "BatchServeResult":
        """Batch :meth:`serve_text`. All prompts are observed before any
        is served, so a prefix shared only within this batch can promote
        and be reused by the very requests that revealed it."""
        ids_list = [self.tokenizer.encode(t) for t in texts]
        if any(not ids for ids in ids_list):
            raise ValueError("serve_text_batch needs at least one token per prompt")
        if self.discovery is not None and observe:
            for ids in ids_list:
                self.discovery.observe(ids)
        results: list[ServeResult] = []
        group_keys: set[tuple] = set()
        solo_groups = 0
        duplicated = 0
        for ids in ids_list:
            result, key, dup = self._serve_text_one(
                ids, max_new_tokens, sampler, stop_ids
            )
            results.append(result)
            duplicated += dup
            if key is None:
                solo_groups += 1
            else:
                group_keys.add(key)
        with self._fastpath_lock:
            physical = sum(
                self._bases[key].cache.physical_bytes()
                for key in group_keys
                if key in self._bases
            )
        return BatchServeResult(
            results=results,
            physical_bytes=physical,
            duplicated_bytes=duplicated,
            shared_groups=len(group_keys) + solo_groups,
        )

    def _serve_text_one(
        self, ids: list[int], max_new_tokens: int, sampler, stop_ids
    ) -> tuple[ServeResult, tuple | None, int]:
        """Serve one tokenized raw prompt; returns (result, spliced-base
        key or None, fork logical bytes) for batch accounting."""
        n = len(ids)
        chain = self._match_discovered(ids) if self.discovery is not None else []
        # Fully-covered prompt: trim the final cached token and recompute
        # it as the suffix — the first sampling decision needs its logits
        # (same move as the schema path's recompute_tail).
        trim = bool(chain) and chain[-1].end >= n
        cached = min(chain[-1].end, n - 1) if chain else 0
        if cached <= 0:
            return self._serve_text_uncached(ids, max_new_tokens, sampler, stop_ids)

        start = time.perf_counter()
        cache, tier_tokens, key, _base = self._fork_text_base(chain, trim, ids)
        try:
            splice_s = time.perf_counter() - start
            cache.reserve(n + max_new_tokens)
            suffix_ids = np.asarray(ids[cached:], dtype=np.int64)
            positions = np.arange(cached, n, dtype=np.int64)
            start = time.perf_counter()
            logits = self.model.forward(suffix_ids, positions, cache)[-1]
            suffix_s = time.perf_counter() - start
            output_ids, step_times = decode_loop(
                self.model, cache, logits,
                max_new_tokens=max_new_tokens,
                next_position=n,
                sampler=sampler, stop_ids=stop_ids,
            )
            duplicated = cache.logical_bytes()
        finally:
            self._free_fork(cache)
        result = ServeResult(
            output_ids=output_ids,
            text=self.tokenizer.decode(output_ids, skip_specials=True),
            prompt_tokens=n,
            cached_tokens=cached,
            uncached_tokens=n - cached,
            ttft_s=splice_s + suffix_s,
            splice_s=splice_s,
            suffix_s=suffix_s,
            step_times_s=step_times,
            tier_tokens=tier_tokens,
        )
        return result, key, duplicated

    def _serve_text_uncached(
        self, ids: list[int], max_new_tokens: int, sampler, stop_ids
    ) -> tuple[ServeResult, None, int]:
        """No discovered prefix: the plain KV-cache baseline path."""
        n = len(ids)
        cache = self.model.new_cache(capacity=n + max_new_tokens)
        start = time.perf_counter()
        logits = self.model.forward(
            np.asarray(ids, dtype=np.int64), np.arange(n, dtype=np.int64), cache
        )[-1]
        suffix_s = time.perf_counter() - start
        output_ids, step_times = decode_loop(
            self.model, cache, logits,
            max_new_tokens=max_new_tokens,
            next_position=n,
            sampler=sampler, stop_ids=stop_ids,
        )
        result = ServeResult(
            output_ids=output_ids,
            text=self.tokenizer.decode(output_ids, skip_specials=True),
            prompt_tokens=n,
            cached_tokens=0,
            uncached_tokens=n,
            ttft_s=suffix_s,
            splice_s=0.0,
            suffix_s=suffix_s,
            step_times_s=step_times,
            tier_tokens={"gpu": 0, "cpu": 0},
        )
        return result, None, 0

    def _match_discovered(self, ids: list[int]) -> list[DiscoveredModule]:
        """Resolve the miner's matched chain against the registry into the
        deepest contiguous, token-verified tiling of a prompt prefix.

        Matched segments usually tile ``[0, m)`` directly, but a trie
        split can leave overlapping spans (e.g. ``[0, 42)`` promoted
        after ``[0, 53)``); the backward walk below then picks the
        deepest subset that still tiles from zero."""
        names = self.discovery.match(ids)
        if not names:
            return []
        with self._fastpath_lock:
            resolved = [self._discovered.get(name) for name in names]
        segments = [
            s for s in resolved
            if s is not None
            and s.end <= len(ids)
            and tuple(int(t) for t in ids[s.start : s.end]) == s.token_ids
        ]
        # Deepest-first: the first backward chain that reaches offset 0
        # has the deepest endpoint (segments arrive shallowest-first).
        for i in range(len(segments) - 1, -1, -1):
            chain = [segments[i]]
            target = segments[i].start
            for j in range(i - 1, -1, -1):
                if target == 0:
                    break
                if segments[j].end == target:
                    chain.append(segments[j])
                    target = segments[j].start
            if target == 0:
                return list(reversed(chain))
        return []

    def _fork_text_base(
        self, chain: list[DiscoveredModule], trim: bool, ids: list[int]
    ) -> tuple["PagedKVCache", dict[str, int], tuple, "_SplicedBase"]:  # noqa: F821 — imported lazily in the fork path
        """Fork a shared paged base for a discovered chain (the raw-text
        mirror of :meth:`_fork_base`)."""
        from repro.llm.paged import PagedKVCache

        key = (DISCOVERED_SCHEMA, tuple(s.name for s in chain), trim)
        with self._fastpath_lock:
            base = self._bases.get(key)
            if base is not None:
                self._bases.move_to_end(key)
        if base is not None:
            tier_tokens = self._validate_base(base)
            if tier_tokens is not None:
                with self._fastpath_lock:
                    self.plan_stats.base_hits += 1
                    cache = base.cache.fork()
                return cache, tier_tokens, key, base
            with self._fastpath_lock:
                stale = self._bases.pop(key, None)
                if stale is not None:
                    stale.cache.free()

        tier_tokens = {"gpu": 0, "cpu": 0}
        entries: list[tuple[CacheKey, int]] = []
        module_kvs: list[ModuleKV] = []
        ancestors: list[str] = []
        for segment in chain:
            kv, tier = self._ensure_discovered(segment, ids, tuple(ancestors))
            ancestors.append(segment.name)
            if trim and segment is chain[-1]:
                kv = kv.slice(0, len(kv) - 1)
            tier_tokens[tier] += len(kv)
            entries.append((CacheKey(DISCOVERED_SCHEMA, segment.name, SOLO_VARIANT), len(kv)))
            if len(kv):
                module_kvs.append(kv)
        base_cache = PagedKVCache.from_module_kvs(self.model.config, module_kvs)
        base_cache.materialize()
        base = _SplicedBase(
            cache=base_cache,
            entries=entries,
            cached_tokens=sum(count for _, count in entries),
            module_names=frozenset(s.name for s in chain),
        )
        with self._fastpath_lock:
            self.plan_stats.base_misses += 1
            self._bases[key] = base
            while len(self._bases) > self.base_cache_size:
                _, victim = self._bases.popitem(last=False)
                victim.cache.free()
            cache = base.cache.fork()
        return cache, tier_tokens, key, base

    def _ensure_discovered(
        self, segment: DiscoveredModule, ids: list[int], ancestors: tuple
    ) -> tuple[ModuleKV, str]:
        """Fetch a discovered module's KV, re-encoding from the observed
        prompt if the store dropped it (capacity/TTL) — the trie keeps
        the boundary, the KV self-heals on the next hit."""
        key = CacheKey(DISCOVERED_SCHEMA, segment.name, SOLO_VARIANT)
        found = self.store.fetch(key)
        if found is not None:
            if found.tier == "cpu" and self.promote_on_cpu_hit:
                self.store.prefetch([key])
            return self.kv_codec.decode(found.entry.kv), found.tier
        started = time.perf_counter()
        kv = self._encode_segment(
            tuple(int(t) for t in ids), segment.start, segment.end, ancestors
        )
        self._observe_reencode(key, kv, time.perf_counter() - started)
        self.store.put(key, self.kv_codec.encode(kv), tier=self.default_tier)
        return kv, self.default_tier

    def _on_store_evict(self, entry, reason: str) -> None:  # holds-lock: store
        """Store evict listener (runs under the store lock): once a module
        is resident in *no* tier, compiled plans and spliced bases that
        reference it are stale — drop them. Demotions (GPU→CPU) leave the
        module servable and invalidate nothing."""
        if entry.key in self.store:
            return
        self._evict_compiled(entry.key.schema, entry.key.module)

    def start_session(self, prompt: str):
        """Open a multi-turn :class:`~repro.cache.session.GenerationSession`
        whose cached modules persist across turns."""
        from repro.cache.session import GenerationSession

        return GenerationSession(self, prompt)

    def baseline(
        self,
        prompt: str,
        *,
        max_new_tokens: int = 32,
        sampler=None,
        stop_ids: set[int] | None = None,
    ) -> GenerationResult:
        """KV-cache baseline over the *same* token content as :meth:`serve`
        (modules inlined, arguments substituted), positions ``0..n-1``."""
        compiled = self._compiled(prompt)
        if compiled.baseline_sequence is None:
            sequence: list[int] = []
            for _, chunk in sorted(
                compiled.plan.baseline_chunks, key=lambda c: c[0]
            ):
                sequence.extend(chunk)
            compiled.baseline_sequence = sequence
        return generate(
            self.model,
            list(compiled.baseline_sequence),
            max_new_tokens=max_new_tokens,
            sampler=sampler,
            stop_ids=stop_ids,
        )

    def prompt_token_count(self, prompt: str) -> tuple[int, int]:
        """(cached, uncached) token counts for a prompt — what the latency
        benches feed the analytical device model."""
        plan = self._compiled(prompt).plan
        uncached = sum(len(t) for t, _ in plan.uncached)
        cached = sum(
            int(np.count_nonzero(_keep_mask(layout))) for layout, _ in plan.modules
        )
        if plan.recompute_tail is not None:
            cached -= 1
        return cached, uncached

    # -- internals ------------------------------------------------------------------

    def _resolve(self, prompt: str) -> ResolvedPrompt:
        node = parse_prompt(prompt)
        return resolve(node, self._registered(node.schema).schema)

    def _registered(self, schema_name: str) -> RegisteredSchema:
        """Look up a registered schema, raising the typed error on miss."""
        try:
            return self.schemas[schema_name]
        except KeyError:
            raise UnknownSchemaError(schema_name, list(self.schemas)) from None

    def _plan(self, resolved: ResolvedPrompt, registered: RegisteredSchema) -> _Plan:
        layout = registered.layout
        selected = set(layout.always_included()) | set(resolved.selected_names())
        args_by_module = {s.name: s.args for s in resolved.selections}

        modules: list[tuple[ModuleLayout, str]] = []
        uncached: list[tuple[np.ndarray, np.ndarray]] = []
        baseline_chunks: list[tuple[int, list[int]]] = []
        occupied: list[tuple[int, int]] = []

        for name in layout.order:
            if name not in selected:
                continue
            mod = layout.module(name)
            modules.append((mod, name))
            occupied.append((mod.span_start, mod.span_end))
            baseline_chunks.append(
                (mod.span_start, self._module_chunk(mod, args_by_module.get(name, {})))
            )
            # Parameter arguments become uncached work at the slot positions.
            for slot in mod.params.values():
                value = args_by_module.get(name, {}).get(slot.name, slot.default)
                if not value:
                    continue
                ids = self.tokenizer.encode(value)
                if len(ids) > slot.length:
                    raise SchemaMismatchError(
                        f"argument for parameter {slot.name!r} of module "
                        f"{name!r} is {len(ids)} tokens; the schema allows "
                        f"{slot.length}"
                    )
                pos = mod.param_positions(slot.name)[: len(ids)]
                uncached.append((np.asarray(ids, dtype=np.int64), pos))

        # New prompt text: use the gap after its anchor if one exists,
        # otherwise append past the schema extent (paper §3.4).
        tail = layout.total_length
        for new_text in resolved.texts:
            ids = np.asarray(self.tokenizer.encode(new_text.text), dtype=np.int64)
            if len(ids) == 0:
                continue
            anchor_end = (
                layout.module(new_text.anchor).span_end if new_text.anchor else 0
            )
            if _gap_fits(anchor_end, len(ids), occupied, tail):
                start = anchor_end
            else:
                start = tail
                tail += len(ids)
            positions = np.arange(start, start + len(ids), dtype=np.int64)
            occupied.append((start, start + len(ids)))
            uncached.append((ids, positions))
            baseline_chunks.append((start, list(map(int, ids))))

        if not modules and not uncached:
            raise SchemaMismatchError(
                "the prompt selects no modules and adds no text; there is "
                "nothing to serve"
            )
        recompute_tail = None
        if not uncached:
            # Fully cached prompt: the first sampling decision still needs
            # logits, so the highest-positioned cached token is recomputed
            # as the suffix (its cached copy is skipped during assembly).
            # The token must be one that survives slot-dropping, i.e. not a
            # parameter placeholder.
            mod = max((m for m, _ in modules), key=lambda m: m.span_end)
            last = int(np.flatnonzero(_keep_mask(mod))[-1])
            recompute_tail = (mod.name, last)
            uncached.append((mod.token_ids[last : last + 1], mod.positions[last : last + 1]))

        plan = _Plan(
            modules=modules,
            uncached=uncached,
            baseline_chunks=baseline_chunks,
            next_position=max(tail, self._max_position(uncached, occupied)),
            recompute_tail=recompute_tail,
        )
        if _PLAN_VALIDATOR is not None:
            _PLAN_VALIDATOR(plan, layout)
        return plan

    @staticmethod
    def _max_position(uncached, occupied) -> int:
        top = 0
        for _, positions in uncached:
            if len(positions):
                top = max(top, int(positions.max()) + 1)
        for _, end in occupied:
            top = max(top, end)
        return top

    def _module_chunk(self, mod: ModuleLayout, args: dict[str, str]) -> list[int]:
        """Module tokens with argument values spliced into their slots —
        the content a user would have sent without Prompt Cache."""
        if not mod.params:
            return list(map(int, mod.token_ids))
        pieces: list[tuple[int, list[int]]] = []
        keep = np.ones(len(mod.token_ids), dtype=bool)
        for slot in mod.params.values():
            keep[slot.offset : slot.offset + slot.length] = False
            value = args.get(slot.name, slot.default)
            ids = self.tokenizer.encode(value) if value else []
            pieces.append((slot.offset, list(map(int, ids))))
        base = [(i, [int(t)]) for i, t in enumerate(mod.token_ids) if keep[i]]
        merged = sorted(base + pieces, key=lambda p: p[0])
        return [t for _, chunk in merged for t in chunk]

    def _variants_for(
        self, registered: RegisteredSchema, plan: _Plan, use_scaffolds: bool
    ) -> list[tuple[ModuleLayout, str, str]]:
        """(layout, name, variant) for each selected module, in order."""
        selected_names = [name for _, name in plan.modules]
        scaffold_active = set()
        if use_scaffolds:
            for names in registered.scaffold_sets:
                if set(names) <= set(selected_names):
                    scaffold_active.update(names)
        return [
            (
                mod,
                name,
                registered.scaffold_variants[name]
                if name in scaffold_active
                else SOLO_VARIANT,
            )
            for mod, name in plan.modules
        ]

    def _gather_module_records(
        self, registered: RegisteredSchema, plan: _Plan, use_scaffolds: bool
    ) -> list[tuple[CacheKey, ModuleKV, str]]:
        """(store key, slot-dropped kv, tier served from) per selected
        module, in document order; encodes on miss."""
        records: list[tuple[CacheKey, ModuleKV, str]] = []
        schema_name = registered.layout.schema_name
        for mod, name, variant in self._variants_for(registered, plan, use_scaffolds):
            kv, tier = self._ensure_encoded(registered, name, variant, self.default_tier)
            kv = drop_param_slots(kv, mod, list(mod.params.values()))
            if plan.recompute_tail is not None and plan.recompute_tail[0] == name:
                # Fully-cached prompt: skip the tail token being recomputed.
                kv = kv.slice(0, len(kv) - 1)
            records.append((CacheKey(schema_name, name, variant), kv, tier))
        return records

    def _gather_module_kvs(
        self, registered: RegisteredSchema, plan: _Plan, use_scaffolds: bool
    ) -> tuple[list[ModuleKV], dict[str, int]]:
        """Fetch (encoding on miss) the slot-dropped states of every
        selected module, in document order."""
        module_kvs: list[ModuleKV] = []
        tier_tokens: dict[str, int] = {"gpu": 0, "cpu": 0}
        for _, kv, tier in self._gather_module_records(registered, plan, use_scaffolds):
            tier_tokens[tier] += len(kv)
            if len(kv):
                module_kvs.append(kv)
        return module_kvs, tier_tokens

    def _base_key(
        self, registered: RegisteredSchema, plan: _Plan, use_scaffolds: bool
    ) -> tuple:
        """Identity of a spliced base: schema + exact module/variant
        sequence + the recompute-tail adjustment."""
        variants = self._variants_for(registered, plan, use_scaffolds)
        return (
            registered.layout.schema_name,
            tuple((name, variant) for _, name, variant in variants),
            plan.recompute_tail,
        )

    def _validate_base(self, base: _SplicedBase) -> dict[str, int] | None:
        """Re-check a spliced base's backing entries against the store.

        Keeps the fast path honest: store hit statistics and tier
        occupancy are recorded exactly as the slow path would record
        them, CPU-tier hits still trigger promotion, and a base whose
        backing entries vanished (capacity eviction) is rebuilt instead
        of served stale. Returns tier_tokens, or None on any miss.
        """
        tier_tokens: dict[str, int] = {"gpu": 0, "cpu": 0}
        for cache_key, count in base.entries:
            found = self.store.fetch(cache_key)
            if found is None:
                return None
            if found.tier == "cpu" and self.promote_on_cpu_hit:
                self.store.prefetch([cache_key])
            tier_tokens[found.tier] += count
        return tier_tokens

    def _fork_base(
        self, registered: RegisteredSchema, plan: _Plan, use_scaffolds: bool
    ) -> tuple["PagedKVCache", dict[str, int], int, "_SplicedBase"]:  # noqa: F821 — imported lazily in the fork path
        """serve()'s paged splice: fork a shared pre-spliced base.

        On a base hit the "splice" is refcount bumps plus a store
        re-validation — no tensor copies at all; the fork inherits the
        base's contiguous mirrors and extends them in place during
        decode. On a miss the base is built once (arena-backed module
        states paged in), mirrored, and kept for subsequent requests.
        The returned base object is the ChunkAttention grouping key:
        streams forked from the same base share its mirror prefix.
        """
        from repro.llm.paged import PagedKVCache

        key = self._base_key(registered, plan, use_scaffolds)
        with self._fastpath_lock:
            base = self._bases.get(key)
            if base is not None:
                self._bases.move_to_end(key)
        if base is not None:
            tier_tokens = self._validate_base(base)
            if tier_tokens is not None:
                with self._fastpath_lock:
                    self.plan_stats.base_hits += 1
                    cache = base.cache.fork()
                return cache, tier_tokens, base.cached_tokens, base
            with self._fastpath_lock:
                stale = self._bases.pop(key, None)
                if stale is not None:
                    stale.cache.free()

        records = self._gather_module_records(registered, plan, use_scaffolds)
        tier_tokens = {"gpu": 0, "cpu": 0}
        entries: list[tuple[CacheKey, int]] = []
        module_kvs: list[ModuleKV] = []
        for cache_key, kv, tier in records:
            tier_tokens[tier] += len(kv)
            entries.append((cache_key, len(kv)))
            if len(kv):
                module_kvs.append(kv)
        base_cache = PagedKVCache.from_module_kvs(self.model.config, module_kvs)
        base_cache.materialize()
        base = _SplicedBase(
            cache=base_cache,
            entries=entries,
            cached_tokens=sum(count for _, count in entries),
            module_names=frozenset(k.module for k, _ in entries),
        )
        with self._fastpath_lock:
            self.plan_stats.base_misses += 1
            self._bases[key] = base
            while len(self._bases) > self.base_cache_size:
                _, victim = self._bases.popitem(last=False)
                victim.cache.free()
            cache = base.cache.fork()
        return cache, tier_tokens, base.cached_tokens, base

    def _free_fork(self, cache) -> None:
        with self._fastpath_lock:
            cache.free()

    def _assemble(
        self,
        registered: RegisteredSchema,
        plan: _Plan,
        use_scaffolds: bool,
        extra_capacity: int = 0,
    ) -> tuple[KVCache, dict[str, int], int]:
        """Concatenate the selected modules' cached states into a KVCache.

        The default path splices layer-major module arenas into one big
        arena per side — one allocation and one contiguous copy per
        module, instead of the legacy path's per-layer buffered concats.
        ``extra_capacity`` reserves room for the suffix + decode tokens so
        no layer reallocates mid-request.
        """
        module_kvs, tier_tokens = self._gather_module_kvs(registered, plan, use_scaffolds)

        config = self.model.config
        if not module_kvs:
            return KVCache.empty(config), tier_tokens, 0

        if self.splice_mode != "legacy":
            cache = _arena_splice(config, module_kvs, extra_capacity)
            return cache, tier_tokens, len(cache)

        layers: list[LayerKV] = []
        for i in range(config.n_layers):
            keys = buffered_concat([kv.keys[i] for kv in module_kvs], axis=1)
            values = buffered_concat([kv.values[i] for kv in module_kvs], axis=1)
            positions = np.concatenate([kv.positions for kv in module_kvs])
            layers.append(LayerKV.from_arrays(keys, values, positions))
        cache = KVCache(layers)
        return cache, tier_tokens, len(cache)


def _arena_splice(
    config, module_kvs: list[ModuleKV], extra_capacity: int = 0
) -> KVCache:
    """Splice arena-backed modules with one allocation per side.

    Builds a single ``(n_layers, n_kv_heads, capacity, head_dim)`` arena
    per side; each module lands with one contiguous copy covering every
    layer at once, and each layer adopts its slice of the arena (spare
    capacity included) without further copies.
    """
    module_kvs = [kv if kv.is_arena else kv.ensure_arena() for kv in module_kvs]
    total = sum(len(kv) for kv in module_kvs)
    capacity = max(total + extra_capacity, 1)
    shape = (config.n_layers, config.n_kv_heads, capacity, config.head_dim)
    key_arena = tracked_alloc(shape)
    value_arena = tracked_alloc(shape)
    positions = np.empty(capacity, dtype=np.int64)
    offset = 0
    for kv in module_kvs:
        n = len(kv)
        key_arena[:, :, offset : offset + n, :] = kv.key_arena
        value_arena[:, :, offset : offset + n, :] = kv.value_arena
        positions[offset : offset + n] = kv.positions
        offset += n
    layers = [
        LayerKV.adopt(
            key_arena[i],
            value_arena[i],
            positions if i == 0 else positions.copy(),
            total,
        )
        for i in range(config.n_layers)
    ]
    return KVCache(layers)


def _keep_mask(mod: ModuleLayout) -> np.ndarray:
    """True for direct tokens that are not parameter placeholders."""
    keep = np.ones(len(mod.token_ids), dtype=bool)
    for slot in mod.params.values():
        keep[slot.offset : slot.offset + slot.length] = False
    return keep


def _merge_uncached(
    batches: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the uncached batches into one forward pass, position-sorted.

    Position-derived causal masking makes the order mathematically
    irrelevant, but sorting keeps traces readable and decode positions
    contiguous at the tail.
    """
    token_ids = np.concatenate([t for t, _ in batches])
    positions = np.concatenate([p for _, p in batches])
    order = np.argsort(positions, kind="stable")
    return token_ids[order], positions[order]


def _gap_fits(
    start: int, length: int, occupied: list[tuple[int, int]], tail: int
) -> bool:
    """True when [start, start+length) collides with no occupied range and
    stays inside the schema extent."""
    end = start + length
    if end > tail:
        return False
    return all(end <= lo or start >= hi for lo, hi in occupied)
