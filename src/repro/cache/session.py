"""Multi-turn generation sessions on top of Prompt Cache.

A chat-style workload is the paper's motivating case for module reuse:
the system message and context documents are identical across turns, so a
session splices them once and keeps a **live KV cache** across turns —
each turn only prefills its own user text (at fresh tail positions) and
decodes. The per-turn cost is Prompt Cache's cached TTFT regardless of how
long the conversation grows, while a KV-cache baseline would re-prefill
the whole transcript.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache.engine import PromptCache
from repro.llm.generation import decode_loop
from repro.pml.errors import SchemaMismatchError


@dataclass
class Turn:
    user_text: str
    output_ids: list[int]
    text: str
    ttft_s: float
    uncached_tokens: int


@dataclass
class SessionResult:
    turns: list[Turn] = field(default_factory=list)

    @property
    def transcript(self) -> str:
        return "\n".join(t.text for t in self.turns)


class GenerationSession:
    """A conversation bound to one served prompt's cache.

    Created via :meth:`PromptCache.start_session`; each :meth:`send` call
    appends user tokens (uncached) and the model's reply to the shared KV
    cache, so later turns attend to the full history without recomputing
    any of it.
    """

    def __init__(self, pc: PromptCache, prompt: str) -> None:
        self.pc = pc
        resolved = pc._resolve(prompt)
        registered = pc._registered(resolved.schema.name)
        plan = pc._plan(resolved, registered)
        self._cache, _, self._cached_tokens = pc._assemble(
            registered, plan, use_scaffolds=True
        )
        token_ids, positions = _merge(plan.uncached)
        self._cache.reserve(len(self._cache) + len(token_ids) + 64)
        self._last_logits = pc.model.forward(token_ids, positions, self._cache)[-1]
        self._next_position = plan.next_position
        self.turns: list[Turn] = []

    def send(
        self,
        user_text: str,
        *,
        max_new_tokens: int = 32,
        sampler=None,
        stop_ids: set[int] | None = None,
    ) -> Turn:
        """One conversation turn: prefill ``user_text``, decode a reply."""
        model = self.pc.model
        ids = np.asarray(self.pc.tokenizer.encode(user_text), dtype=np.int64)
        positions = np.arange(
            self._next_position, self._next_position + len(ids), dtype=np.int64
        )
        if len(ids) and positions[-1] + max_new_tokens >= model.config.max_position:
            raise SchemaMismatchError(
                "conversation exceeds the model's position budget; start a "
                "new session or use a model with a longer context"
            )
        self._cache.reserve(len(self._cache) + len(ids) + max_new_tokens)
        start = time.perf_counter()
        if len(ids):
            self._last_logits = model.forward(ids, positions, self._cache)[-1]
            self._next_position += len(ids)
        ttft = time.perf_counter() - start
        output_ids, _ = decode_loop(
            model,
            self._cache,
            self._last_logits,
            max_new_tokens=max_new_tokens,
            next_position=self._next_position,
            sampler=sampler,
            stop_ids=stop_ids,
        )
        self._next_position += len(output_ids)
        # The reply's final logits seed the next turn.
        if output_ids:
            self._last_logits = model.forward(
                np.asarray(output_ids[-1:]),
                np.asarray([self._next_position - 1]),
                self._cache,
            )[-1]
            self._next_position += 0  # position consumed by the forward above
        turn = Turn(
            user_text=user_text,
            output_ids=output_ids,
            text=self.pc.tokenizer.decode(output_ids, skip_specials=True),
            ttft_s=ttft,
            uncached_tokens=len(ids),
        )
        self.turns.append(turn)
        return turn

    @property
    def context_tokens(self) -> int:
        """Total tokens currently live in the session cache."""
        return len(self._cache)


def _merge(batches):
    token_ids = np.concatenate([t for t, _ in batches])
    positions = np.concatenate([p for _, p in batches])
    order = np.argsort(positions, kind="stable")
    return token_ids[order], positions[order]


def start_session(pc: PromptCache, prompt: str) -> GenerationSession:
    """Open a multi-turn session seeded by a PML prompt."""
    return GenerationSession(pc, prompt)
