"""Position-ID layout: assigning every schema token an absolute position.

This is the paper's §3.3 first step: "The starting position ID is
determined by the absolute location of the prompt module within the
schema." Rules implemented here:

- Anonymous text becomes synthesized always-included modules.
- A module's span covers its direct tokens, its parameter slots (``len``
  placeholder tokens each), and the spans of nested modules/unions.
- Union members all start at the union's cursor; the union's span is the
  size of its **largest** member (paper: "their token sequence size is
  considered with the size of the largest child").
- Parameter slots are encoded as ``<unk>`` tokens whose positions are
  recorded for later argument substitution.
- A module's *direct* token/position arrays skip nested-module ranges, so a
  parent's positions are themselves discontinuous — which the engine's
  position-aware attention handles natively.

The layout is a pure function of (schema, tokenizer): laying out the same
schema twice yields identical position assignments, the property that makes
cached states reusable across prompts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pml.ast import (
    ModuleNode,
    ParamNode,
    RoleNode,
    SchemaNode,
    TextNode,
    UnionNode,
)
from repro.pml.errors import ValidationError
from repro.pml.schema import Schema

ANONYMOUS_PREFIX = "__text"


@dataclass(frozen=True)
class ParamSlot:
    """A parameter's placeholder run inside its module's direct sequence."""

    name: str
    offset: int  # index of the first placeholder in the module's direct arrays
    length: int  # number of reserved tokens (the `len` attribute)
    default: str


@dataclass
class ModuleLayout:
    """One module's token sequence and absolute position assignment."""

    name: str
    span_start: int
    span_end: int  # exclusive
    token_ids: np.ndarray  # direct tokens only (<unk> in parameter slots)
    positions: np.ndarray  # absolute position IDs, same length as token_ids
    params: dict[str, ParamSlot] = field(default_factory=dict)
    anonymous: bool = False

    @property
    def span_length(self) -> int:
        return self.span_end - self.span_start

    def param_positions(self, name: str) -> np.ndarray:
        slot = self.params[name]
        return self.positions[slot.offset : slot.offset + slot.length]


@dataclass
class SchemaLayout:
    """Every module's layout plus the schema-wide extent."""

    schema_name: str
    total_length: int  # first position ID past the schema (suffix text + decode start here)
    modules: dict[str, ModuleLayout]
    order: list[str]  # document order, anonymous modules included
    anonymous_names: list[str]

    def module(self, name: str) -> ModuleLayout:
        return self.modules[name]

    def always_included(self) -> list[str]:
        return list(self.anonymous_names)


def layout_schema(schema: Schema, tokenizer) -> SchemaLayout:
    """Assign absolute positions to every token of every module."""
    builder = _LayoutBuilder(tokenizer)
    cursor = builder.layout_children(schema.root.children, cursor=0, module_out=None)
    return SchemaLayout(
        schema_name=schema.name,
        total_length=cursor,
        modules=builder.modules,
        order=builder.order,
        anonymous_names=builder.anonymous,
    )


class _LayoutBuilder:
    def __init__(self, tokenizer) -> None:
        self.tokenizer = tokenizer
        self.modules: dict[str, ModuleLayout] = {}
        self.order: list[str] = []
        self.anonymous: list[str] = []
        self._anon_counter = 0

    # A "module accumulator" gathers the direct tokens of the module being
    # laid out: (token_ids, positions, params).
    def layout_children(
        self, children: list, cursor: int, module_out: dict | None
    ) -> int:
        for child in children:
            if isinstance(child, TextNode):
                cursor = self._layout_text(child, cursor, module_out)
            elif isinstance(child, ParamNode):
                cursor = self._layout_param(child, cursor, module_out)
            elif isinstance(child, ModuleNode):
                cursor = self._layout_module(child, cursor)
            elif isinstance(child, UnionNode):
                cursor = self._layout_union(child, cursor)
            elif isinstance(child, RoleNode):
                raise ValidationError(
                    "role tags must be resolved with a chat template before layout"
                )
            else:
                raise TypeError(f"unexpected node {type(child).__name__} in layout")
        return cursor

    def _layout_text(self, node: TextNode, cursor: int, module_out: dict | None) -> int:
        ids = self.tokenizer.encode(node.text)
        if module_out is None:
            # Top-level anonymous text: synthesize an always-included module.
            name = f"{ANONYMOUS_PREFIX}{self._anon_counter}"
            self._anon_counter += 1
            layout = ModuleLayout(
                name=name,
                span_start=cursor,
                span_end=cursor + len(ids),
                token_ids=np.asarray(ids, dtype=np.int64),
                positions=np.arange(cursor, cursor + len(ids), dtype=np.int64),
                anonymous=True,
            )
            self.modules[name] = layout
            self.order.append(name)
            self.anonymous.append(name)
            return cursor + len(ids)
        module_out["tokens"].extend(ids)
        module_out["positions"].extend(range(cursor, cursor + len(ids)))
        return cursor + len(ids)

    def _layout_param(self, node: ParamNode, cursor: int, module_out: dict | None) -> int:
        if module_out is None:
            raise ValidationError("<param> must appear inside a <module>")
        slot = ParamSlot(
            name=node.name,
            offset=len(module_out["tokens"]),
            length=node.length,
            default=node.default,
        )
        module_out["params"][node.name] = slot
        module_out["tokens"].extend([self.tokenizer.unk_id] * node.length)
        module_out["positions"].extend(range(cursor, cursor + node.length))
        return cursor + node.length

    def _layout_module(self, node: ModuleNode, cursor: int) -> int:
        start = cursor
        acc = {"tokens": [], "positions": [], "params": {}}
        end = self._layout_module_body(node, acc, cursor)
        self.modules[node.name] = ModuleLayout(
            name=node.name,
            span_start=start,
            span_end=end,
            token_ids=np.asarray(acc["tokens"], dtype=np.int64),
            positions=np.asarray(acc["positions"], dtype=np.int64),
            params=acc["params"],
        )
        self.order.append(node.name)
        return end

    def _layout_module_body(self, node: ModuleNode, acc: dict, cursor: int) -> int:
        for child in node.children:
            if isinstance(child, TextNode):
                cursor = self._layout_text(child, cursor, acc)
            elif isinstance(child, ParamNode):
                cursor = self._layout_param(child, cursor, acc)
            elif isinstance(child, ModuleNode):
                # Nested module: its own layout entry; parent's direct arrays
                # skip this range, leaving a (potential) gap.
                cursor = self._layout_module(child, cursor)
            elif isinstance(child, UnionNode):
                cursor = self._layout_union(child, cursor)
            else:
                raise TypeError(f"unexpected node {type(child).__name__} in module")
        return cursor

    def _layout_union(self, node: UnionNode, cursor: int) -> int:
        # All members share the union's start position (paper §3.2.3).
        end = cursor
        for member in node.members:
            member_end = self._layout_module(member, cursor)
            end = max(end, member_end)
        return end
