"""Prompt-module encoding: precomputing attention states (paper §3.3).

Each module's direct token sequence runs through the model **alone**, with
its schema-assigned (absolute, possibly gapped) position IDs and an empty
KV cache — so attention is confined to the module's own span. This is the
paper's implicit per-module attention mask: encoding in isolation is
mathematically identical to a full prefill under a block-diagonal mask
(verified bit-exactly by the equivalence tests).

Scaffolds (§3.3 "Attention masking effect") are the escape hatch for
semantically dependent modules: a scaffold set is encoded *jointly* — one
forward pass over the concatenated sequences — so its members share an
attention span, then split back into per-module states that override the
independent ones when all members are imported together.
"""

from __future__ import annotations

import numpy as np

from repro.cache.layout import ModuleLayout, ParamSlot
from repro.llm.kv import ModuleKV, tracked_alloc
from repro.llm.models import TransformerModel


def _arena_from_cache(cache, start: int, stop: int, positions) -> ModuleKV:
    """Copy a token range of a filled KV cache into layer-major arenas."""
    n_layers = len(cache.layers)
    first = cache.layers[0]
    shape = (n_layers, first.n_kv_heads, stop - start, first.head_dim)
    key_arena = tracked_alloc(shape)
    value_arena = tracked_alloc(shape)
    for i, layer in enumerate(cache.layers):
        key_arena[i] = layer.keys[:, start:stop, :]
        value_arena[i] = layer.values[:, start:stop, :]
    return ModuleKV.from_arenas(key_arena, value_arena, positions.copy())


def encode_module(model: TransformerModel, layout: ModuleLayout) -> ModuleKV:
    """Compute one module's KV states in isolation.

    The result is **arena-backed**: one contiguous
    ``(n_layers, n_kv_heads, T, head_dim)`` tensor per side, so the splice
    phase can copy the whole module in one memcpy (see
    :class:`~repro.llm.kv.ModuleKV`).
    """
    n = len(layout.token_ids)
    if n == 0:
        return _empty_module_kv(model)
    cache = model.new_cache(capacity=n)
    model.forward(layout.token_ids, layout.positions, cache)
    return _arena_from_cache(cache, 0, n, layout.positions)


def encode_scaffold(
    model: TransformerModel, layouts: list[ModuleLayout]
) -> dict[str, ModuleKV]:
    """Jointly encode a scaffold set; returns per-module states.

    Members attend to each other (causally, by position) exactly as they
    would in a full prefill — trading the extra memory of a second copy for
    the removal of the masking approximation.
    """
    if not layouts:
        raise ValueError("a scaffold needs at least one module")
    ordered = sorted(layouts, key=lambda m: m.span_start)
    token_ids = np.concatenate([m.token_ids for m in ordered])
    positions = np.concatenate([m.positions for m in ordered])
    cache = model.new_cache(capacity=len(token_ids))
    model.forward(token_ids, positions, cache)

    out: dict[str, ModuleKV] = {}
    offset = 0
    for layout in ordered:
        n = len(layout.token_ids)
        out[layout.name] = _arena_from_cache(
            cache, offset, offset + n, layout.positions
        )
        offset += n
    return out


def drop_param_slots(
    module_kv: ModuleKV, layout: ModuleLayout, slots: list[ParamSlot]
) -> ModuleKV:
    """Remove parameter-placeholder entries from a module's cached states.

    The paper *replaces* ``<unk>`` slot states with freshly computed
    argument states (§3.3); operationally we drop the placeholder entries
    here and let the suffix prefill compute the argument tokens at the
    recorded slot positions — same result, one concat instead of a scatter.
    """
    if not slots:
        return module_kv
    keep = np.ones(len(module_kv), dtype=bool)
    for slot in slots:
        keep[slot.offset : slot.offset + slot.length] = False
    if module_kv.is_arena:
        # One fancy-index over the token axis drops the slots from every
        # layer at once, keeping the result arena-backed (contiguous).
        return ModuleKV.from_arenas(
            module_kv.key_arena[:, :, keep, :],
            module_kv.value_arena[:, :, keep, :],
            module_kv.positions[keep],
        )
    return ModuleKV(
        keys=[k[:, keep, :] for k in module_kv.keys],
        values=[v[:, keep, :] for v in module_kv.values],
        positions=module_kv.positions[keep],
    )


def _empty_module_kv(model: TransformerModel) -> ModuleKV:
    cfg = model.config
    shape = (cfg.n_layers, cfg.n_kv_heads, 0, cfg.head_dim)
    return ModuleKV.from_arenas(
        np.empty(shape, dtype=np.float32),
        np.empty(shape, dtype=np.float32),
        np.empty(0, dtype=np.int64),
    )
