"""Parallel module encoding: fanning §3.3's independent encodes over cores.

The paper's core observation — prompt modules are encoded *in isolation*
with schema-assigned positions — makes schema warm-up embarrassingly
parallel: every solo module (and every jointly encoded scaffold set) is
an independent forward pass. :class:`ParallelEncoder` runs those passes
on a ``fork``-started process pool and moves the resulting key/value
arenas back through ``multiprocessing.shared_memory`` segments, so no
tensor is ever pickled: each worker writes its ``(n_layers, n_kv_heads,
T, head_dim)`` arenas straight into a segment the parent pre-sized, and
the parent adopts them with one contiguous copy per side.

Determinism: workers run the exact same :func:`encode_module` /
:func:`encode_scaffold` code on fork-inherited (byte-identical) weights,
and results are assembled in schema order regardless of completion
order — outputs are **bit-identical** to a sequential encode (asserted
by the bit-equality test matrix and the encode bench).

Fallbacks: ``workers <= 1``, a platform without ``fork``, or a missing
``shared_memory`` implementation all degrade to the sequential in-process
path with the same return value.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache.encoder import encode_module, encode_scaffold
from repro.cache.layout import ModuleLayout, SchemaLayout
from repro.cache.storage import SOLO_VARIANT
from repro.llm.kv import ModuleKV, tracked_alloc
from repro.llm.layers import DTYPE

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - CPython always ships it
    shared_memory = None


def fork_available() -> bool:
    """True when the zero-pickle pool path can run on this platform."""
    return (
        shared_memory is not None
        and "fork" in multiprocessing.get_all_start_methods()
    )


# The model the pool workers encode with. Set by the parent immediately
# before the executor forks its workers, so children inherit it through
# copy-on-write memory instead of pickling the weights.
_WORKER_MODEL = None


@dataclass(frozen=True)
class _Target:
    """Where one module's arenas land: a shared segment plus geometry."""

    name: str
    variant: str
    shm_name: str
    shape: tuple[int, int, int, int]


@dataclass(frozen=True)
class _Job:
    """One pool task: a solo module or a jointly encoded scaffold set."""

    kind: str  # "module" | "scaffold"
    layouts: tuple[ModuleLayout, ...]
    targets: tuple[_Target, ...]


@dataclass
class EncodeReport:
    """Timing breakdown of one :meth:`ParallelEncoder.encode_schema`."""

    schema: str
    wall_s: float
    jobs: int
    parallel: bool
    encode_s: list[float] = field(default_factory=list)  # per-job, worker-side


def _arena_views(segment, shape) -> tuple[np.ndarray, np.ndarray]:
    """Key/value array views over one segment (keys first, values after)."""
    nbytes = int(np.prod(shape)) * np.dtype(DTYPE).itemsize
    keys = np.ndarray(shape, dtype=DTYPE, buffer=segment.buf, offset=0)
    values = np.ndarray(shape, dtype=DTYPE, buffer=segment.buf, offset=nbytes)
    return keys, values


def _attach_segment(name: str):
    """Attach to a parent-owned segment.

    Fork-pool workers share the parent's resource tracker, whose name set
    dedupes the duplicate registration; the parent's ``unlink`` after
    collection retires the name exactly once.
    """
    return shared_memory.SharedMemory(name=name)


def _run_job(job: _Job) -> float:
    """Worker-side: encode and write arenas into the shared segments.

    Returns only the encode duration — the tensors travel through shared
    memory, never through the result pickle.
    """
    model = _WORKER_MODEL
    start = time.perf_counter()
    if job.kind == "scaffold":
        states = encode_scaffold(model, list(job.layouts))
    else:
        states = {job.layouts[0].name: encode_module(model, job.layouts[0])}
    for target in job.targets:
        kv = states[target.name].ensure_arena()
        segment = _attach_segment(target.shm_name)
        try:
            key_dst, value_dst = _arena_views(segment, target.shape)
            np.copyto(key_dst, kv.key_arena)
            np.copyto(value_dst, kv.value_arena)
        finally:
            # Views must die before close(): the segment's memoryview
            # refuses to release while arrays still export its buffer.
            del key_dst, value_dst
            segment.close()
    return time.perf_counter() - start


class ParallelEncoder:
    """Process-pool encode plane for one model.

    One encoder serves any number of ``encode_schema`` calls; the pool is
    created lazily on first parallel use and torn down by :meth:`close`
    (or the context manager). The pool is bound to the model captured at
    creation — fork inheritance means later model swaps are invisible to
    live workers, so use one encoder per model.

    Parameters
    ----------
    model:
        The :class:`~repro.llm.models.TransformerModel` to encode with.
    workers:
        Pool size; ``None`` means ``os.cpu_count()``. ``<= 1`` encodes
        sequentially in-process (still bit-identical, still metered).
    metrics:
        Optional :class:`~repro.server.metrics.MetricsRegistry`; records
        ``encode_duration_seconds``, ``schema_warmup_seconds``,
        ``encode_jobs_total`` and the ``encode_pool_workers`` gauge.
    """

    def __init__(self, model, workers: int | None = None, metrics=None) -> None:
        self.model = model
        self.workers = max(1, int(workers if workers is not None else (os.cpu_count() or 1)))
        self.metrics = metrics
        self._executor = None
        self._segments: dict[str, object] = {}
        self.last_report: EncodeReport | None = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when encodes actually fan out across processes."""
        return self.workers > 1 and fork_available()

    def __enter__(self) -> "ParallelEncoder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down and release any leftover segments."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            if self.metrics is not None:
                self.metrics.gauge(
                    "encode_pool_workers", "live encode pool processes"
                ).set(0)
        for name in list(self._segments):
            self._release_segment(name)

    def _pool(self):
        global _WORKER_MODEL
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            _WORKER_MODEL = self.model
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            if self.metrics is not None:
                self.metrics.gauge(
                    "encode_pool_workers", "live encode pool processes"
                ).set(self.workers)
        return self._executor

    # -- encoding ----------------------------------------------------------------

    def encode_schema(
        self,
        layout: SchemaLayout,
        scaffold_sets: list[tuple[str, ...]] | tuple = (),
        skip_solo: set[str] | frozenset = frozenset(),
    ) -> dict[tuple[str, str], ModuleKV]:
        """Encode every module (and scaffold set) of one laid-out schema.

        Returns ``{(module, variant): ModuleKV}`` in schema order —
        solo variants first (document order), then scaffold variants —
        exactly the order a sequential ``_encode_all`` produces.
        ``skip_solo`` names modules whose solo states are already cached
        (scaffold sets are always refreshed, matching the engine).
        """
        start = time.perf_counter()
        report = EncodeReport(
            schema=layout.schema_name, wall_s=0.0, jobs=0, parallel=self.parallel
        )
        if self.parallel:
            out = self._encode_parallel(layout, scaffold_sets, skip_solo, report)
        else:
            out = self._encode_sequential(layout, scaffold_sets, skip_solo, report)
        report.wall_s = time.perf_counter() - start
        self.last_report = report
        self._record(report)
        return out

    def _encode_sequential(
        self, layout, scaffold_sets, skip_solo, report
    ) -> dict[tuple[str, str], ModuleKV]:
        out: dict[tuple[str, str], ModuleKV] = {}
        for name in layout.order:
            if name in skip_solo:
                continue
            step = time.perf_counter()
            out[(name, SOLO_VARIANT)] = encode_module(self.model, layout.module(name))
            report.encode_s.append(time.perf_counter() - step)
            report.jobs += 1
        for i, names in enumerate(scaffold_sets):
            step = time.perf_counter()
            states = encode_scaffold(self.model, [layout.module(n) for n in names])
            report.encode_s.append(time.perf_counter() - step)
            report.jobs += 1
            for n in names:
                out[(n, f"scaffold{i}")] = states[n]
        return out

    def _encode_parallel(
        self, layout, scaffold_sets, skip_solo, report
    ) -> dict[tuple[str, str], ModuleKV]:
        jobs: list[_Job] = []
        inline: list[tuple[str, str]] = []  # empty modules: no segment needed
        for name in layout.order:
            if name in skip_solo:
                continue
            mod = layout.module(name)
            if len(mod.token_ids) == 0:
                inline.append((name, SOLO_VARIANT))
                continue
            jobs.append(
                _Job(
                    kind="module",
                    layouts=(mod,),
                    targets=(self._make_target(name, SOLO_VARIANT, mod),),
                )
            )
        for i, names in enumerate(scaffold_sets):
            variant = f"scaffold{i}"
            mods = tuple(layout.module(n) for n in names)
            jobs.append(
                _Job(
                    kind="scaffold",
                    layouts=mods,
                    targets=tuple(
                        self._make_target(mod.name, variant, mod) for mod in mods
                    ),
                )
            )

        try:
            durations = list(self._pool().map(_run_job, jobs))
        except BaseException:
            for job in jobs:
                for target in job.targets:
                    self._release_segment(target.shm_name)
            raise
        report.jobs = len(jobs)
        report.encode_s = durations

        collected: dict[tuple[str, str], ModuleKV] = {}
        positions = {
            (t.name, t.variant): mod.positions
            for job in jobs
            for t, mod in zip(job.targets, job.layouts)
        }
        for job in jobs:
            for target in job.targets:
                collected[(target.name, target.variant)] = self._adopt(
                    target, positions[(target.name, target.variant)]
                )
        for name, variant in inline:
            collected[(name, variant)] = encode_module(self.model, layout.module(name))

        # Assemble in sequential-encode order (solos in document order,
        # then scaffold variants) so store insertion order is identical.
        out: dict[tuple[str, str], ModuleKV] = {}
        for name in layout.order:
            if name in skip_solo:
                continue
            out[(name, SOLO_VARIANT)] = collected[(name, SOLO_VARIANT)]
        for i, names in enumerate(scaffold_sets):
            for n in names:
                out[(n, f"scaffold{i}")] = collected[(n, f"scaffold{i}")]
        return out

    # -- shared-memory plumbing ---------------------------------------------------

    def _make_target(self, name: str, variant: str, mod: ModuleLayout) -> _Target:
        shape = (
            self.model.config.n_layers,
            self.model.config.n_kv_heads,
            len(mod.token_ids),
            self.model.config.head_dim,
        )
        nbytes = 2 * int(np.prod(shape)) * np.dtype(DTYPE).itemsize
        segment = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        self._segments[segment.name] = segment
        return _Target(name=name, variant=variant, shm_name=segment.name, shape=shape)

    def _adopt(self, target: _Target, layout_positions: np.ndarray) -> ModuleKV:
        """Lift one worker-filled segment into a private arena-backed KV."""
        segment = self._segments[target.shm_name]
        try:
            key_src, value_src = _arena_views(segment, target.shape)
            key_arena = tracked_alloc(target.shape)
            value_arena = tracked_alloc(target.shape)
            np.copyto(key_arena, key_src)
            np.copyto(value_arena, value_src)
        finally:
            del key_src, value_src
            self._release_segment(target.shm_name)
        return ModuleKV.from_arenas(key_arena, value_arena, layout_positions.copy())

    def _release_segment(self, name: str) -> None:
        segment = self._segments.pop(name, None)
        if segment is None:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass

    # -- observability -------------------------------------------------------------

    def _record(self, report: EncodeReport) -> None:
        if self.metrics is None:
            return
        self.metrics.histogram(
            "schema_warmup_seconds",
            "wall time to encode one schema's full module set",
            schema=report.schema,
        ).observe(report.wall_s)
        mode = "parallel" if report.parallel else "sequential"
        self.metrics.counter(
            "encode_jobs_total", "module/scaffold encode jobs run", mode=mode
        ).inc(report.jobs)
        duration = self.metrics.histogram(
            "encode_duration_seconds", "per-job encode duration", mode=mode
        )
        for seconds in report.encode_s:
            duration.observe(seconds)
