"""KV-state compression codecs for module storage.

The paper flags attention-state compression (CacheGen, H2O) as the lever
for taming Table 2's memory bill (§5.5, §6). This module implements the
two standard storage codecs plus the plumbing to use them transparently:

- :class:`Fp16Codec` — halve storage by keeping fp16 at rest, fp32 in use
  (matches the paper's fp16 accounting).
- :class:`Int8Codec` — 4x reduction via per-(head, token) absmax
  quantization of K and V.

A codec is attached to :class:`~repro.cache.engine.PromptCache`; modules
are encoded once, stored compressed, and decompressed on fetch. The
quantization ablation bench measures the memory/fidelity trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.kv import ModuleKV


@dataclass
class CompressedModuleKV:
    """Codec output: opaque payload plus the byte count storage charges."""

    codec: str
    payload: dict[str, list[np.ndarray]]
    positions: np.ndarray

    def nbytes(self) -> int:
        tensors = sum(
            arr.nbytes for arrays in self.payload.values() for arr in arrays
        )
        return int(tensors + self.positions.nbytes)

    def __len__(self) -> int:
        return int(self.positions.shape[0])


class KVCodec:
    """Encode/decode interface; implementations must round-trip positions
    exactly and keys/values to their advertised fidelity."""

    name = "identity"

    def encode(self, kv: ModuleKV):
        return kv

    def decode(self, stored) -> ModuleKV:
        return stored


class IdentityCodec(KVCodec):
    """No compression: modules stored as computed (fp32 in this engine)."""


class Fp16Codec(KVCodec):
    """Half-precision at rest. Decode casts back to fp32 for compute;
    the round-trip error is fp16 rounding (~1e-3 relative)."""

    name = "fp16"

    def encode(self, kv: ModuleKV) -> CompressedModuleKV:
        return CompressedModuleKV(
            codec=self.name,
            payload={
                "keys": [k.astype(np.float16) for k in kv.keys],
                "values": [v.astype(np.float16) for v in kv.values],
            },
            positions=kv.positions.copy(),
        )

    def decode(self, stored: CompressedModuleKV) -> ModuleKV:
        return ModuleKV(
            keys=[k.astype(np.float32) for k in stored.payload["keys"]],
            values=[v.astype(np.float32) for v in stored.payload["values"]],
            positions=stored.positions,
        )


class Int8Codec(KVCodec):
    """Symmetric int8 quantization with per-(head, token) absmax scales.

    Scales are fp32 of shape (heads, tokens, 1) per layer — negligible
    next to the 4x tensor shrink. Typical round-trip error is <1% of the
    tensor's dynamic range, which the ablation shows leaves greedy outputs
    nearly always unchanged.
    """

    name = "int8"

    def encode(self, kv: ModuleKV) -> CompressedModuleKV:
        payload: dict[str, list[np.ndarray]] = {
            "keys": [], "values": [], "key_scales": [], "value_scales": [],
        }
        for k, v in zip(kv.keys, kv.values):
            kq, ks = _quantize(k)
            vq, vs = _quantize(v)
            payload["keys"].append(kq)
            payload["key_scales"].append(ks)
            payload["values"].append(vq)
            payload["value_scales"].append(vs)
        return CompressedModuleKV(
            codec=self.name, payload=payload, positions=kv.positions.copy()
        )

    def decode(self, stored: CompressedModuleKV) -> ModuleKV:
        keys = [
            q.astype(np.float32) * s
            for q, s in zip(stored.payload["keys"], stored.payload["key_scales"])
        ]
        values = [
            q.astype(np.float32) * s
            for q, s in zip(stored.payload["values"], stored.payload["value_scales"])
        ]
        return ModuleKV(keys=keys, values=values, positions=stored.positions)


def _quantize(tensor: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(int8 tensor, fp32 scales) with absmax scaling per (head, token)."""
    absmax = np.abs(tensor).max(axis=-1, keepdims=True)
    scales = (absmax / 127.0 + 1e-12).astype(np.float32)
    quantized = np.clip(np.round(tensor / scales), -127, 127).astype(np.int8)
    return quantized, scales


CODECS: dict[str, KVCodec] = {
    c.name: c for c in (IdentityCodec(), Fp16Codec(), Int8Codec())
}


def codec(name: str) -> KVCodec:
    try:
        return CODECS[name]
    except KeyError:
        raise KeyError(f"unknown KV codec {name!r}; known: {sorted(CODECS)}") from None
