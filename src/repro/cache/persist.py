"""Disk persistence for encoded prompt modules.

Encoding a module costs a full prefill of its text; serving systems want
those states to survive restarts. ``save_store``/``load_store`` round-trip
a :class:`~repro.cache.storage.ModuleCacheStore`'s entries through disk.

Two snapshot formats coexist:

- **v1** (``format="v1"``): one ``savez_compressed`` archive per entry.
  Compact, but a restore decompresses and copies every byte before the
  first request can be served — O(total KV bytes) warm start.
- **v2** (default): each raw module's layer-major key/value arenas are
  written as plain aligned ``.npy`` payloads, so a restore can
  ``np.memmap`` them — warm start becomes O(index) with lazy page-in,
  and N same-host workers that attach the same snapshot share one
  resident copy of the pages (the paper's §3.4 CPU-memory accounting).
  Codec-compressed entries keep the npz container (their tensors are
  rebuilt on decode anyway).

Integrity: ``index.json`` records a full SHA-256 per payload file plus a
**sparse** digest over the file size, head block, and evenly sampled
64 KiB blocks. Eager loads verify the full digest; mapped attaches verify
the sparse digest up front (cheap — it pages in a handful of blocks, not
the whole snapshot) and delegate the full digest to a background sweep
(:class:`DigestSweep`) that drops entries failing verification. Corrupt,
truncated, or missing files are skipped with a warning instead of raising
mid-load — one bad file costs one module (a re-encode), not the whole
snapshot.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import mmap as _mmap
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro.cache.compress import CompressedModuleKV
from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.llm.kv import ModuleKV

_INDEX = "index.json"
SNAPSHOT_VERSION = 2

# Sparse-digest sampling: head block + this many evenly spaced blocks.
_SPARSE_BLOCK = 64 * 1024
_SPARSE_SAMPLES = 8

_ARENA_KIND = "arena"
_ARENA_PARTS = ("keys", "values", "positions")


@dataclass
class SaveReport:
    """What a snapshot actually contains. ``skipped`` counts entries that
    hold non-persistable payloads (simulator stand-ins) — a nonzero value
    means the snapshot is partial, which operators need to know before
    trusting a restore."""

    saved: int = 0
    skipped: int = 0
    skipped_keys: list[str] = field(default_factory=list)

    @property
    def partial(self) -> bool:
        return self.skipped > 0

    def summary(self) -> str:
        if not self.skipped:
            return f"saved {self.saved} module(s)"
        return (
            f"saved {self.saved} module(s); skipped {self.skipped} "
            f"non-persistable entr{'y' if self.skipped == 1 else 'ies'} "
            f"({', '.join(self.skipped_keys)})"
        )


def _safe_stem(key: CacheKey) -> str:
    return f"{key.schema}__{key.module}__{key.variant}".replace("/", "_")


def _entry_path(directory: Path, key: CacheKey) -> Path:
    return directory / f"{_safe_stem(key)}.npz"


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _sparse_sha256(path: Path) -> str:
    """Digest of the file size + head block + evenly sampled blocks.

    Touches at most ``(_SPARSE_SAMPLES + 1) * _SPARSE_BLOCK`` bytes, so a
    mapped attach can sanity-check every payload (length, npy header, a
    spread of pages) without paging the whole snapshot in. Truncation and
    most corruption patterns are caught; the full digest still runs in the
    background sweep.
    """
    size = path.stat().st_size
    digest = hashlib.sha256(str(size).encode())
    offsets = {0}
    if size > _SPARSE_BLOCK:
        span = size - _SPARSE_BLOCK
        offsets.update(
            (span * i) // (_SPARSE_SAMPLES - 1) for i in range(_SPARSE_SAMPLES)
        )
    with path.open("rb") as handle:
        for offset in sorted(offsets):
            handle.seek(offset)
            digest.update(handle.read(_SPARSE_BLOCK))
    return digest.hexdigest()


def _file_record(path: Path) -> dict:
    return {
        "file": path.name,
        "nbytes": path.stat().st_size,
        "sha256": _sha256(path),
        "sparse_sha256": _sparse_sha256(path),
    }


def _raw_arenas(payload: ModuleKV) -> tuple[np.ndarray, np.ndarray]:
    arena = payload.ensure_arena()
    if arena.is_arena:
        return arena.key_arena, arena.value_arena
    # Degenerate zero-layer module: persist empty 4-d arenas so the
    # loader's from_arenas path stays uniform.
    empty = np.empty((0, 0, 0, 0), dtype=np.float32)
    return empty, empty


def _save_entry_v1(path: Path, payload) -> str:
    if isinstance(payload, ModuleKV):
        arrays = {"positions": payload.positions}
        for i, (k, v) in enumerate(zip(payload.keys, payload.values)):
            arrays[f"keys{i}"] = k
            arrays[f"values{i}"] = v
        np.savez_compressed(path, **arrays)
        return "raw"
    arrays = {"positions": payload.positions}
    for field_name, tensors in payload.payload.items():
        for i, tensor in enumerate(tensors):
            arrays[f"{field_name}{i}"] = tensor
    np.savez_compressed(path, **arrays)
    return payload.codec


def _save_entry_v2(directory: Path, key: CacheKey, payload) -> dict:
    """Write one entry's payload files; returns the index record's
    ``kind``/``files`` fields."""
    stem = _safe_stem(key)
    if isinstance(payload, ModuleKV):
        key_arena, value_arena = _raw_arenas(payload)
        parts = {
            "keys": np.ascontiguousarray(key_arena),
            "values": np.ascontiguousarray(value_arena),
            "positions": np.ascontiguousarray(payload.positions),
        }
        files = {}
        for part, array in parts.items():
            path = directory / f"{stem}.{part}.npy"
            np.save(path, array)
            files[part] = _file_record(path)
        return {"kind": _ARENA_KIND, "files": files}
    path = directory / f"{stem}.npz"
    kind = _save_entry_v1(path, payload)
    return {"kind": kind, "files": {"payload": _file_record(path)}}


def save_store(
    store: ModuleCacheStore, directory: str | Path, *, format: str = "v2"
) -> SaveReport:
    """Write every entry of both tiers to ``directory``.

    ``format="v2"`` (default) stores raw modules as memmap-ready ``.npy``
    arena payloads; ``format="v1"`` keeps the legacy one-npz-per-entry
    layout. Returns a :class:`SaveReport`; check ``report.partial`` to
    detect entries (simulator stand-ins) that could not be serialized.
    """
    if format not in ("v1", "v2"):
        raise ValueError(f"unknown snapshot format {format!r}; expected 'v1' or 'v2'")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entries: list[dict] = []
    report = SaveReport()
    for tier_name in ("gpu", "cpu"):
        tier = store.tier(tier_name)
        for key, entry in tier.entries.items():
            payload = entry.kv
            if not isinstance(payload, (ModuleKV, CompressedModuleKV)):
                # Simulator stand-ins carry no tensors; record the gap so
                # a partial snapshot is distinguishable from a full one.
                report.skipped += 1
                report.skipped_keys.append(key.tag())
                continue
            record = {
                "schema": key.schema, "module": key.module,
                "variant": key.variant, "tier": tier_name,
                "pinned": entry.pinned,
            }
            if format == "v1":
                path = _entry_path(directory, key)
                record["kind"] = _save_entry_v1(path, payload)
                record["file"] = path.name
                record["sha256"] = _sha256(path)
            else:
                record.update(_save_entry_v2(directory, key, payload))
            entries.append(record)
            report.saved += 1
    if format == "v1":
        index: object = entries
    else:
        index = {"version": SNAPSHOT_VERSION, "entries": entries}
    (directory / _INDEX).write_text(json.dumps(index, indent=1))
    if report.partial:
        warnings.warn(f"partial snapshot: {report.summary()}", stacklevel=2)
    return report


def _record_tag(record: dict) -> str:
    return f"{record['schema']}/{record['module']}/{record['variant']}"


def _warn_skip(record: dict, reason: str) -> None:
    name = record.get("file") or next(
        (f["file"] for f in record.get("files", {}).values()), "<?>"
    )
    warnings.warn(
        f"skipping {name} ({_record_tag(record)}): {reason}", stacklevel=3
    )


def _load_npz(path: Path, record: dict):
    with np.load(path) as data:
        positions = data["positions"]
        if record["kind"] == "raw":
            n_layers = sum(1 for name in data.files if name.startswith("keys"))
            if n_layers == 0:
                return ModuleKV(keys=[], values=[], positions=positions)
            return ModuleKV.from_arenas(
                np.stack([data[f"keys{i}"] for i in range(n_layers)]),
                np.stack([data[f"values{i}"] for i in range(n_layers)]),
                positions,
            )
        payload: dict[str, list[np.ndarray]] = {}
        fields = [n for n in data.files if n != "positions"]
        # Layer order must survive the archive: sort by (field, i).
        fields.sort(
            key=lambda n: (n.rstrip("0123456789"), int(n[len(n.rstrip("0123456789")):]))
        )
        for name in fields:
            field_name = name.rstrip("0123456789")
            payload.setdefault(field_name, []).append(data[name])
        return CompressedModuleKV(
            codec=record["kind"], payload=payload, positions=positions
        )


def _verify_file(directory: Path, info: dict, verify: str) -> str | None:
    """Return a skip reason, or ``None`` when the file checks out."""
    path = directory / info["file"]
    if not path.exists():
        return "payload file missing"
    if verify == "off":
        return None
    if verify == "sparse" and "sparse_sha256" in info:
        expected, actual = info["sparse_sha256"], _sparse_sha256(path)
        label = "sparse checksum"
    else:
        expected, actual = info.get("sha256"), _sha256(path)
        label = "checksum"
    if expected is not None and actual != expected:
        return f"{label} mismatch (expected {expected[:12]}…, got {actual[:12]}…)"
    return None


def _load_entry_v2(directory: Path, record: dict, mmap: bool, verify: str):
    """Build the entry payload, or raise/return ``None`` after warning."""
    for info in record["files"].values():
        reason = _verify_file(directory, info, verify)
        if reason is not None:
            _warn_skip(record, reason)
            return None
    if record["kind"] != _ARENA_KIND:
        return _load_npz(directory / record["files"]["payload"]["file"], record)
    mode = "r" if mmap else None
    key_arena = np.load(directory / record["files"]["keys"]["file"], mmap_mode=mode)
    value_arena = np.load(directory / record["files"]["values"]["file"], mmap_mode=mode)
    # Positions are tiny and hot (every splice reads them) — always eager.
    positions = np.load(directory / record["files"]["positions"]["file"])
    if key_arena.ndim != 4 or value_arena.shape != key_arena.shape:
        _warn_skip(record, f"malformed arena shapes {key_arena.shape}/{value_arena.shape}")
        return None
    if key_arena.shape[0] == 0:
        return ModuleKV(keys=[], values=[], positions=positions)
    return ModuleKV.from_arenas(key_arena, value_arena, positions)


def _index_entries(directory: Path) -> tuple[int, list[dict]]:
    index = json.loads((directory / _INDEX).read_text())
    if isinstance(index, list):  # v1 wrote a bare record list
        return 1, index
    version = int(index.get("version", 0))
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {version} in {directory / _INDEX}"
        )
    return version, index["entries"]


def load_store(
    directory: str | Path,
    store: ModuleCacheStore | None = None,
    *,
    mmap: bool = False,
    verify: str | None = None,
) -> ModuleCacheStore:
    """Rebuild a store from :func:`save_store` output (either format).

    ``mmap=True`` maps v2 arena payloads read-only instead of copying them
    into private memory — the zero-copy warm start. ``verify`` is
    ``"full"``, ``"sparse"``, or ``"off"``; it defaults to ``"full"`` for
    eager loads and ``"sparse"`` for mapped ones (pair mapped loads with a
    :class:`DigestSweep`, as :func:`attach_snapshot` does, to keep full
    coverage). Corrupt, truncated, or missing payload files are skipped
    with a warning (the module simply re-encodes on first use); only a
    missing or unreadable ``index.json`` raises.
    """
    directory = Path(directory)
    store = store or ModuleCacheStore()
    if verify is None:
        verify = "sparse" if mmap else "full"
    if verify not in ("full", "sparse", "off"):
        raise ValueError(f"unknown verify mode {verify!r}")
    version, entries = _index_entries(directory)
    for record in entries:
        key = CacheKey(record["schema"], record["module"], record["variant"])
        try:
            if version == 1:
                path = directory / record["file"]
                info = {"file": record["file"], "sha256": record.get("sha256")}
                reason = _verify_file(directory, info, "off" if verify == "off" else "full")
                if reason is not None:
                    _warn_skip(record, reason)
                    continue
                kv = _load_npz(path, record)
            else:
                kv = _load_entry_v2(directory, record, mmap, verify)
                if kv is None:
                    continue
        except (OSError, ValueError, KeyError, BadZipFile) as exc:
            # A pre-checksum snapshot (no digest fields) can still present
            # a truncated or garbled payload; degrade to a skip.
            _warn_skip(record, f"unreadable payload ({type(exc).__name__}: {exc})")
            continue
        store.put(key, kv, tier=record["tier"], pinned=record["pinned"])
    return store


def snapshot_catalog(directory: str | Path) -> dict[CacheKey, dict]:
    """Index a v2 snapshot for lazy per-entry attach.

    Where :func:`attach_snapshot` maps every entry up front, the fabric
    store treats the snapshot as a cold *tier*: it indexes the records now
    and materializes individual entries on demand with
    :func:`load_catalog_entry`. Only v2 snapshots qualify — v1 archives
    cannot be mapped and would silently degrade the tier to eager loads.
    """
    directory = Path(directory)
    version, entries = _index_entries(directory)
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"fabric snapshot tier needs a v{SNAPSHOT_VERSION} snapshot; "
            f"{directory} is v{version}"
        )
    catalog: dict[CacheKey, dict] = {}
    for record in entries:
        key = CacheKey(record["schema"], record["module"], record["variant"])
        catalog[key] = record
    return catalog


def catalog_entry_nbytes(record: dict) -> int:
    """On-disk payload bytes of one catalog record (prefetch budgeting)."""
    return sum(info.get("nbytes", 0) for info in record.get("files", {}).values())


def load_catalog_entry(
    directory: str | Path, record: dict, *, mmap: bool = True, verify: str = "sparse"
):
    """Materialize one catalog record; ``None`` (after a warning) when the
    payload is corrupt, truncated, or missing — the caller re-encodes."""
    directory = Path(directory)
    try:
        return _load_entry_v2(directory, record, mmap, verify)
    except (OSError, ValueError, KeyError, BadZipFile) as exc:
        _warn_skip(record, f"unreadable payload ({type(exc).__name__}: {exc})")
        return None


class DigestSweep(threading.Thread):
    """Background full-digest verification of a mapped snapshot.

    A mapped attach only verifies sparse digests eagerly; this daemon
    re-reads every payload file, checks the full SHA-256, and **removes**
    entries whose files fail (the module re-encodes on next use) so a
    worker never keeps serving from a payload the sparse probe happened to
    miss. ``join()`` it in tests; production just lets it run.
    """

    def __init__(
        self,
        directory: Path,
        store: ModuleCacheStore,
        entries: list[dict],
        metrics=None,
    ) -> None:
        super().__init__(name="snapshot-digest-sweep", daemon=True)
        self.directory = directory
        self.store = store
        self.entries = entries
        self.metrics = metrics
        self.verified = 0
        self.failures: list[str] = []

    def run(self) -> None:
        for record in self.entries:
            key = CacheKey(record["schema"], record["module"], record["variant"])
            bad = None
            for info in record.get("files", {}).values():
                reason = _verify_file(self.directory, info, "full")
                if reason is not None:
                    bad = f"{info['file']}: {reason}"
                    break
            if bad is None:
                self.verified += 1
                continue
            self.failures.append(f"{_record_tag(record)} ({bad})")
            warnings.warn(
                f"background digest sweep evicting {_record_tag(record)}: {bad}",
                stacklevel=2,
            )
            for tier in (self.store.gpu, self.store.cpu):
                if key in tier:
                    tier.remove(key)
            if self.metrics is not None:
                self.metrics.counter(
                    "snapshot_verify_failures_total",
                    "Snapshot payloads failing the background full digest",
                    phase="background",
                ).inc()


@dataclass
class AttachResult:
    """Outcome of :func:`attach_snapshot`: the (shared, read-only mapped)
    store, the running background digest sweep, and how many bytes of
    module KV are mapped rather than privately resident."""

    store: ModuleCacheStore
    sweep: DigestSweep | None
    mapped_bytes: int


def attach_snapshot(
    directory: str | Path,
    store: ModuleCacheStore | None = None,
    *,
    metrics=None,
    background_verify: bool = True,
) -> AttachResult:
    """Map a v2 snapshot read-only into ``store`` — the same-host share
    mode: every worker that attaches the same directory pages against one
    resident copy of the module KV. Sparse digests are verified eagerly;
    the full digests run in a background :class:`DigestSweep` (disable
    with ``background_verify=False``).
    """
    directory = Path(directory)
    store = load_store(directory, store, mmap=True, verify="sparse")
    _, entries = _index_entries(directory)
    mapped = store.mapped_bytes()
    if metrics is not None:
        metrics.gauge(
            "snapshot_mapped_bytes",
            "Bytes of module KV served from the shared snapshot mapping",
        ).set(mapped)
        observe_residency(store, metrics)
    sweep = None
    if background_verify:
        sweep = DigestSweep(directory, store, entries, metrics=metrics)
        sweep.start()
    return AttachResult(store=store, sweep=sweep, mapped_bytes=mapped)


def _base_memmap(array: np.ndarray) -> np.memmap | None:
    seen = array
    while isinstance(seen, np.ndarray):
        if isinstance(seen, np.memmap):
            return seen
        seen = seen.base
    return None


def _resident_bytes(array: np.memmap) -> int | None:
    """Pages of ``array`` currently resident, via ``mincore(2)``.

    Best-effort: returns ``None`` on platforms without mincore or when the
    probe fails — callers fall back to "unknown" rather than guessing.
    """
    length = int(array.nbytes)
    if length == 0:
        return 0
    page = _mmap.PAGESIZE
    address = array.ctypes.data
    aligned = address - (address % page)
    length += address - aligned
    n_pages = (length + page - 1) // page
    vec = (ctypes.c_ubyte * n_pages)()
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        rc = libc.mincore(
            ctypes.c_void_p(aligned), ctypes.c_size_t(length), vec
        )
    except (OSError, AttributeError):
        return None
    if rc != 0:
        return None
    return sum(b & 1 for b in vec) * page


def resident_snapshot_bytes(store: ModuleCacheStore) -> int | None:
    """Bytes of mapped snapshot payloads actually paged in right now.

    The gap between :meth:`ModuleCacheStore.mapped_bytes` and this number
    is the lazy-page-in win: a fresh attach maps gigabytes while touching
    almost nothing. ``None`` when the platform cannot report residency.
    """
    total = 0
    seen: set[int] = set()
    for tier in (store.gpu, store.cpu):
        for entry in tier.entries.values():
            kv = entry.kv
            if not getattr(kv, "is_mapped", False):
                continue
            for arena in (kv.key_arena, kv.value_arena):
                if arena is None:
                    continue
                mapped = _base_memmap(arena)
                if mapped is None or id(mapped) in seen:
                    continue
                seen.add(id(mapped))
                resident = _resident_bytes(mapped)
                if resident is None:
                    return None
                total += resident
    return total


def observe_residency(store: ModuleCacheStore, metrics) -> int | None:
    """Export the current mapped/resident byte gauges to ``metrics``."""
    metrics.gauge(
        "snapshot_mapped_bytes",
        "Bytes of module KV served from the shared snapshot mapping",
    ).set(store.mapped_bytes())
    resident = resident_snapshot_bytes(store)
    if resident is not None:
        metrics.gauge(
            "snapshot_resident_bytes",
            "Mapped snapshot bytes currently paged into memory",
        ).set(resident)
    return resident
