"""Disk persistence for encoded prompt modules.

Encoding a module costs a full prefill of its text; serving systems want
those states to survive restarts. ``save_store``/``load_store`` round-trip
a :class:`~repro.cache.storage.ModuleCacheStore`'s solo-variant entries
through ``.npz`` files (one per module, scales/int8 payloads included when
a codec produced them).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.cache.compress import CompressedModuleKV
from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.llm.kv import ModuleKV

_INDEX = "index.json"


def _entry_path(directory: Path, key: CacheKey) -> Path:
    safe = f"{key.schema}__{key.module}__{key.variant}".replace("/", "_")
    return directory / f"{safe}.npz"


def save_store(store: ModuleCacheStore, directory: str | Path) -> int:
    """Write every entry of both tiers to ``directory``; returns a count."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    index: list[dict] = []
    count = 0
    for tier_name in ("gpu", "cpu"):
        tier = store.tier(tier_name)
        for key, entry in tier.entries.items():
            payload = entry.kv
            path = _entry_path(directory, key)
            if isinstance(payload, ModuleKV):
                arrays = {"positions": payload.positions}
                for i, (k, v) in enumerate(zip(payload.keys, payload.values)):
                    arrays[f"keys{i}"] = k
                    arrays[f"values{i}"] = v
                np.savez_compressed(path, **arrays)
                kind = "raw"
            elif isinstance(payload, CompressedModuleKV):
                arrays = {"positions": payload.positions}
                for field, tensors in payload.payload.items():
                    for i, tensor in enumerate(tensors):
                        arrays[f"{field}{i}"] = tensor
                np.savez_compressed(path, **arrays)
                kind = payload.codec
            else:  # pragma: no cover - simulator stand-ins are not persisted
                continue
            index.append(
                {
                    "schema": key.schema, "module": key.module,
                    "variant": key.variant, "tier": tier_name,
                    "kind": kind, "file": path.name,
                    "pinned": entry.pinned,
                }
            )
            count += 1
    (directory / _INDEX).write_text(json.dumps(index, indent=1))
    return count


def load_store(
    directory: str | Path, store: ModuleCacheStore | None = None
) -> ModuleCacheStore:
    """Rebuild a store from :func:`save_store` output."""
    directory = Path(directory)
    store = store or ModuleCacheStore()
    index = json.loads((directory / _INDEX).read_text())
    for record in index:
        key = CacheKey(record["schema"], record["module"], record["variant"])
        with np.load(directory / record["file"]) as data:
            positions = data["positions"]
            if record["kind"] == "raw":
                n_layers = sum(1 for name in data.files if name.startswith("keys"))
                kv = ModuleKV(
                    keys=[data[f"keys{i}"] for i in range(n_layers)],
                    values=[data[f"values{i}"] for i in range(n_layers)],
                    positions=positions,
                )
            else:
                payload: dict[str, list[np.ndarray]] = {}
                fields = [n for n in data.files if n != "positions"]
                # Layer order must survive the archive: sort by (field, i).
                fields.sort(
                    key=lambda n: (n.rstrip("0123456789"), int(n[len(n.rstrip("0123456789")):]))
                )
                for name in fields:
                    field = name.rstrip("0123456789")
                    payload.setdefault(field, []).append(data[name])
                kv = CompressedModuleKV(
                    codec=record["kind"], payload=payload, positions=positions
                )
        store.put(key, kv, tier=record["tier"], pinned=record["pinned"])
    return store
