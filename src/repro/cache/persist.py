"""Disk persistence for encoded prompt modules.

Encoding a module costs a full prefill of its text; serving systems want
those states to survive restarts. ``save_store``/``load_store`` round-trip
a :class:`~repro.cache.storage.ModuleCacheStore`'s solo-variant entries
through ``.npz`` files (one per module, scales/int8 payloads included when
a codec produced them).

Integrity: ``index.json`` records a SHA-256 per payload file. A restore
verifies each file against its recorded digest and **skips** corrupt,
truncated, or missing files with a warning instead of raising mid-load —
one bad file costs one module (a re-encode), not the whole snapshot.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro.cache.compress import CompressedModuleKV
from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.llm.kv import ModuleKV

_INDEX = "index.json"


@dataclass
class SaveReport:
    """What a snapshot actually contains. ``skipped`` counts entries that
    hold non-persistable payloads (simulator stand-ins) — a nonzero value
    means the snapshot is partial, which operators need to know before
    trusting a restore."""

    saved: int = 0
    skipped: int = 0
    skipped_keys: list[str] = field(default_factory=list)

    @property
    def partial(self) -> bool:
        return self.skipped > 0

    def summary(self) -> str:
        if not self.skipped:
            return f"saved {self.saved} module(s)"
        return (
            f"saved {self.saved} module(s); skipped {self.skipped} "
            f"non-persistable entr{'y' if self.skipped == 1 else 'ies'} "
            f"({', '.join(self.skipped_keys)})"
        )


def _entry_path(directory: Path, key: CacheKey) -> Path:
    safe = f"{key.schema}__{key.module}__{key.variant}".replace("/", "_")
    return directory / f"{safe}.npz"


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def save_store(store: ModuleCacheStore, directory: str | Path) -> SaveReport:
    """Write every entry of both tiers to ``directory``.

    Returns a :class:`SaveReport`; check ``report.partial`` to detect
    entries (simulator stand-ins) that could not be serialized.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    index: list[dict] = []
    report = SaveReport()
    for tier_name in ("gpu", "cpu"):
        tier = store.tier(tier_name)
        for key, entry in tier.entries.items():
            payload = entry.kv
            path = _entry_path(directory, key)
            if isinstance(payload, ModuleKV):
                arrays = {"positions": payload.positions}
                for i, (k, v) in enumerate(zip(payload.keys, payload.values)):
                    arrays[f"keys{i}"] = k
                    arrays[f"values{i}"] = v
                np.savez_compressed(path, **arrays)
                kind = "raw"
            elif isinstance(payload, CompressedModuleKV):
                arrays = {"positions": payload.positions}
                for field_name, tensors in payload.payload.items():
                    for i, tensor in enumerate(tensors):
                        arrays[f"{field_name}{i}"] = tensor
                np.savez_compressed(path, **arrays)
                kind = payload.codec
            else:
                # Simulator stand-ins carry no tensors; record the gap so
                # a partial snapshot is distinguishable from a full one.
                report.skipped += 1
                report.skipped_keys.append(key.tag())
                continue
            index.append(
                {
                    "schema": key.schema, "module": key.module,
                    "variant": key.variant, "tier": tier_name,
                    "kind": kind, "file": path.name,
                    "pinned": entry.pinned,
                    "sha256": _sha256(path),
                }
            )
            report.saved += 1
    (directory / _INDEX).write_text(json.dumps(index, indent=1))
    if report.partial:
        warnings.warn(f"partial snapshot: {report.summary()}", stacklevel=2)
    return report


def _warn_skip(record: dict, reason: str) -> None:
    warnings.warn(
        f"skipping {record['file']} "
        f"({record['schema']}/{record['module']}/{record['variant']}): {reason}",
        stacklevel=3,
    )


def load_store(
    directory: str | Path, store: ModuleCacheStore | None = None
) -> ModuleCacheStore:
    """Rebuild a store from :func:`save_store` output.

    Corrupt, truncated, or missing payload files are skipped with a
    warning (the module simply re-encodes on first use); only a missing
    or unreadable ``index.json`` raises.
    """
    directory = Path(directory)
    store = store or ModuleCacheStore()
    index = json.loads((directory / _INDEX).read_text())
    for record in index:
        key = CacheKey(record["schema"], record["module"], record["variant"])
        path = directory / record["file"]
        if not path.exists():
            _warn_skip(record, "payload file missing")
            continue
        expected = record.get("sha256")
        if expected is not None:
            actual = _sha256(path)
            if actual != expected:
                _warn_skip(
                    record, f"checksum mismatch (expected {expected[:12]}…, got {actual[:12]}…)"
                )
                continue
        try:
            with np.load(path) as data:
                positions = data["positions"]
                if record["kind"] == "raw":
                    n_layers = sum(1 for name in data.files if name.startswith("keys"))
                    kv = ModuleKV(
                        keys=[data[f"keys{i}"] for i in range(n_layers)],
                        values=[data[f"values{i}"] for i in range(n_layers)],
                        positions=positions,
                    )
                else:
                    payload: dict[str, list[np.ndarray]] = {}
                    fields = [n for n in data.files if n != "positions"]
                    # Layer order must survive the archive: sort by (field, i).
                    fields.sort(
                        key=lambda n: (n.rstrip("0123456789"), int(n[len(n.rstrip("0123456789")):]))
                    )
                    for name in fields:
                        field_name = name.rstrip("0123456789")
                        payload.setdefault(field_name, []).append(data[name])
                    kv = CompressedModuleKV(
                        codec=record["kind"], payload=payload, positions=positions
                    )
        except (OSError, ValueError, KeyError, BadZipFile) as exc:
            # A pre-checksum snapshot (no sha256 field) can still present
            # a truncated or garbled archive; degrade to a skip.
            _warn_skip(record, f"unreadable archive ({type(exc).__name__}: {exc})")
            continue
        store.put(key, kv, tier=record["tier"], pinned=record["pinned"])
    return store
