"""Prompt Cache core: layout, encoding, storage, and cached inference."""

from repro.cache.batch import BatchFootprint, BatchRequest, batch_footprint, max_batch_size
from repro.cache.compress import CODECS, Fp16Codec, IdentityCodec, Int8Codec, KVCodec
from repro.cache.persist import SaveReport, load_store, save_store
from repro.cache.engine import (
    BatchServeResult,
    PromptCache,
    RegisteredSchema,
    ServeResult,
)
from repro.cache.session import GenerationSession, SessionResult, Turn, start_session
from repro.cache.encoder import drop_param_slots, encode_module, encode_scaffold
from repro.cache.layout import (
    ModuleLayout,
    ParamSlot,
    SchemaLayout,
    layout_schema,
)
from repro.cache.storage import (
    CacheEntry,
    CacheKey,
    CacheTier,
    FetchResult,
    ModuleCacheStore,
    POLICIES,
    SOLO_VARIANT,
    TierStats,
)

__all__ = [
    "PromptCache", "ServeResult", "RegisteredSchema", "BatchServeResult",
    "GenerationSession", "Turn", "SessionResult", "start_session",
    "BatchRequest", "BatchFootprint", "batch_footprint", "max_batch_size",
    "KVCodec", "IdentityCodec", "Fp16Codec", "Int8Codec", "CODECS",
    "save_store", "load_store", "SaveReport",
    "encode_module", "encode_scaffold", "drop_param_slots",
    "SchemaLayout", "ModuleLayout", "ParamSlot", "layout_schema",
    "ModuleCacheStore", "CacheTier", "CacheKey", "CacheEntry",
    "FetchResult", "TierStats", "POLICIES", "SOLO_VARIANT",
]
