"""Module cache storage: CPU/GPU tiers, capacity accounting, eviction.

The paper stores encoded modules in GPU HBM (fast, scarce) or host DRAM
(abundant, pays a host-to-device copy) and leaves replacement policy to
future work (§4.1, §6). This module implements both tiers with byte-exact
accounting plus the replacement strategies the paper sketches — LRU, LFU,
FIFO, and size-aware — so the eviction ablation can compare them.

Entries are keyed by ``(schema, module, variant)``; ``variant`` separates a
module's independent encoding from its scaffolded encodings.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.analysis.locks import ordered_lock
from repro.hw.allocator import CapacityError, MemoryAccountant
from repro.llm.kv import ModuleKV

SOLO_VARIANT = "solo"

# Eviction reasons reported to evict listeners and metrics labels.
EVICT_CAPACITY = "capacity"
EVICT_TTL = "ttl"


@dataclass(frozen=True)
class CacheKey:
    schema: str
    module: str
    variant: str = SOLO_VARIANT

    def tag(self) -> str:
        return f"{self.schema}/{self.module}/{self.variant}"


@dataclass
class CacheEntry:
    key: CacheKey
    kv: ModuleKV
    nbytes: int
    pinned: bool = False
    # Bookkeeping consumed by eviction policies.
    inserted_at: int = 0
    last_used_at: int = 0
    use_count: int = 0
    # Wall-clock last access, consumed by TTL expiry (last-access TTL:
    # every hit pushes expiry out by the tier's ttl_s).
    last_used_wall: float = 0.0


class EvictionPolicy:
    """Chooses a victim among unpinned entries; subclasses order them."""

    name = "base"

    def victim(self, entries: list[CacheEntry]) -> CacheEntry:
        candidates = [e for e in entries if not e.pinned]
        if not candidates:
            raise CapacityError("cache full and every entry is pinned")
        return min(candidates, key=self.rank)

    def rank(self, entry: CacheEntry):
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    name = "lru"

    def rank(self, entry: CacheEntry):
        return entry.last_used_at


class LFUPolicy(EvictionPolicy):
    name = "lfu"

    def rank(self, entry: CacheEntry):
        return (entry.use_count, entry.last_used_at)


class FIFOPolicy(EvictionPolicy):
    name = "fifo"

    def rank(self, entry: CacheEntry):
        return entry.inserted_at


class SizeAwarePolicy(EvictionPolicy):
    """Evict the largest cold entry first (GreedyDual-style tie to LRU)."""

    name = "size"

    def rank(self, entry: CacheEntry):
        return (-entry.nbytes, entry.last_used_at)


POLICIES = {p.name: p for p in (LRUPolicy(), LFUPolicy(), FIFOPolicy(), SizeAwarePolicy())}


@dataclass
class TierStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    ttl_evictions: int = 0
    bytes_evicted: int = 0
    # Miss-fetcher plane only (the store-level ``fetch_stats`` ledger):
    # a fetcher that raised instead of returning KV-or-None.
    fetch_errors: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheTier:
    """One storage tier (e.g. GPU HBM or host DRAM) with a byte budget."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int | None = None,
        policy: EvictionPolicy | str = "lru",
        lock: threading.RLock | None = None,
        ttl_s: float | None = None,
        clock=time.monotonic,
    ) -> None:
        self.name = name
        self.policy = POLICIES[policy] if isinstance(policy, str) else policy
        # Last-access TTL: an unpinned entry idle longer than ttl_s is
        # expired lazily on the next get/put touching the tier (or by an
        # explicit sweep_expired()). TTL victims are *dropped*, not
        # demoted — staleness, unlike capacity pressure, follows the
        # entry to any tier.
        self.ttl_s = ttl_s
        self.clock = clock
        # Re-entrant so an ``on_evict`` callback may call back into the
        # tier (or a sibling sharing the lock) from inside ``put``. The
        # store passes one shared lock to both tiers, making every
        # cross-tier sequence (demotion, spill, prefetch) atomic.
        self._lock = lock or ordered_lock("store")  # lock-order: store
        self.accountant = MemoryAccountant(capacity_bytes=capacity_bytes)  # guarded-by: _lock
        self.entries: dict[CacheKey, CacheEntry] = {}  # guarded-by: _lock
        self.stats = TierStats()  # guarded-by: _lock
        self._clock = itertools.count()  # guarded-by: _lock
        # Called with each evicted entry (the store uses it to demote GPU
        # victims into host memory instead of dropping them).
        self.on_evict = None  # guarded-by: _lock
        self._evict_listeners: list = []  # guarded-by: _lock

    def add_evict_listener(self, fn) -> None:
        """Register an observer called as ``fn(victim, reason)`` with each
        evicted entry, *after* ``on_evict`` (so demotion has already
        happened). ``reason`` is ``"capacity"`` or ``"ttl"``. Listeners
        run under the tier lock; they may call back into the store but
        must not block."""
        with self._lock:
            self._evict_listeners.append(fn)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self.entries

    def get(self, key: CacheKey) -> CacheEntry | None:
        with self._lock:
            entry = self.entries.get(key)
            if entry is not None and self._expired(entry, self.clock()):
                self._expire(entry)
                entry = None
            if entry is None:
                self.stats.misses += 1
                return None
            entry.last_used_at = next(self._clock)
            entry.last_used_wall = self.clock()
            entry.use_count += 1
            self.stats.hits += 1
            return entry

    def peek(self, key: CacheKey) -> CacheEntry | None:
        """Look up without touching hit/miss statistics or recency."""
        with self._lock:
            return self.entries.get(key)

    def put(self, key: CacheKey, kv: ModuleKV, pinned: bool = False) -> CacheEntry:
        """Insert, evicting until the entry fits. Raises
        :class:`CapacityError` if it can never fit (entry > capacity or all
        remaining entries pinned)."""
        with self._lock:
            if key in self.entries:
                self.remove(key)
            self.sweep_expired()  # reclaim stale space before evicting live entries
            nbytes = kv.nbytes()
            capacity = self.accountant.capacity_bytes
            if capacity is not None and nbytes > capacity:
                raise CapacityError(
                    f"module {key.tag()} ({nbytes} B) exceeds tier {self.name!r} "
                    f"capacity ({capacity} B)"
                )
            while not self.accountant.would_fit(nbytes):
                self._evict_one()
            self.accountant.allocate(key.tag(), nbytes)
            now = next(self._clock)
            entry = CacheEntry(
                key=key, kv=kv, nbytes=nbytes, pinned=pinned,
                inserted_at=now, last_used_at=now, last_used_wall=self.clock(),
            )
            self.entries[key] = entry
            self.stats.insertions += 1
            return entry

    def remove(self, key: CacheKey) -> None:
        with self._lock:
            self.entries.pop(key)
            self.accountant.release(key.tag())

    def _expired(self, entry: CacheEntry, now: float) -> bool:
        return (
            self.ttl_s is not None
            and not entry.pinned
            and now - entry.last_used_wall > self.ttl_s
        )

    def sweep_expired(self) -> int:
        """Expire every entry idle past ``ttl_s`` now; returns the count.
        Runs implicitly on get/put, publicly for idle-time maintenance."""
        if self.ttl_s is None:
            return 0
        with self._lock:
            now = self.clock()
            doomed = [e for e in self.entries.values() if self._expired(e, now)]
            for entry in doomed:
                self._expire(entry)
            return len(doomed)

    def _expire(self, entry: CacheEntry) -> None:
        # TTL victims are not demoted: ``on_evict`` (the demotion hook)
        # is skipped, listeners still observe the drop with its reason.
        with self._lock:
            self.remove(entry.key)
            self.stats.evictions += 1
            self.stats.ttl_evictions += 1
            self.stats.bytes_evicted += entry.nbytes
            for listener in self._evict_listeners:
                listener(entry, EVICT_TTL)

    def _evict_one(self) -> None:
        with self._lock:
            victim = self.policy.victim(list(self.entries.values()))
            self.remove(victim.key)
            self.stats.evictions += 1
            self.stats.bytes_evicted += victim.nbytes
            if self.on_evict is not None:
                self.on_evict(victim)
            for listener in self._evict_listeners:
                listener(victim, EVICT_CAPACITY)

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self.accountant.used_bytes

    def mapped_bytes(self) -> int:
        """Bytes of entries whose tensors are snapshot-mapped (file-backed,
        shared with other attached workers) rather than private memory.
        Operators subtract this from ``used_bytes`` to price a host's real
        per-worker footprint."""
        with self._lock:
            return sum(
                entry.nbytes
                for entry in self.entries.values()
                if getattr(entry.kv, "is_mapped", False)
            )

    def keys(self) -> list[CacheKey]:
        with self._lock:
            return list(self.entries)


@dataclass
class FetchResult:
    entry: CacheEntry
    tier: str  # which tier served it ("gpu" fast path or "cpu" copy path)
    # Where the bytes originally came from this fetch: same as ``tier``
    # for resident hits, or "snapshot"/"peer" when a fabric store pulled
    # the entry up from a colder tier on the way. Empty string means the
    # store predates source tracking (plain two-tier store default).
    source: str = ""


class ModuleCacheStore:
    """Two-tier module store mirroring the paper's GPU/CPU memory split.

    ``fetch`` prefers the fast tier; on a fast-tier miss it falls back to
    the slow tier (the paper's host-to-device copy path) and reports which
    tier served the request so benchmarks can price the transfer.
    """

    def __init__(
        self,
        gpu_capacity_bytes: int | None = None,
        cpu_capacity_bytes: int | None = None,
        policy: str = "lru",
        demote_on_evict: bool = True,
        gpu_policy: str | None = None,
        cpu_policy: str | None = None,
        gpu_ttl_s: float | None = None,
        cpu_ttl_s: float | None = None,
        clock=time.monotonic,
    ) -> None:
        # One re-entrant lock shared by both tiers: the serving runtime
        # hits the store from worker threads while the event loop reads
        # statistics, and GPU eviction re-enters the CPU tier (demotion).
        # A single lock makes those sequences atomic with no ordering
        # hazards between tiers.
        self._lock = ordered_lock("store")
        self.gpu = CacheTier(
            "gpu", gpu_capacity_bytes, gpu_policy or policy,
            lock=self._lock, ttl_s=gpu_ttl_s, clock=clock,
        )
        self.cpu = CacheTier(
            "cpu", cpu_capacity_bytes, cpu_policy or policy,
            lock=self._lock, ttl_s=cpu_ttl_s, clock=clock,
        )
        if demote_on_evict:
            # GPU victims fall back to abundant host DRAM (paper §4.1);
            # later fetches pay the host-to-device copy instead of a
            # re-encode.
            self.gpu.on_evict = lambda entry: self.cpu.put(
                entry.key, entry.kv, pinned=entry.pinned
            )
        # Optional get-or-fetch hook: called on a full (both-tier) miss
        # with the CacheKey, *outside* the store lock — it may block on a
        # network round-trip. Returning a KV object installs it (default
        # GPU tier, spilling as usual) and the fetch succeeds; returning
        # None falls through to the ordinary miss (re-encode upstream).
        # The cluster's PeerFetcher plugs in here.
        self._miss_fetcher = None
        # Miss-fetch plane ledger: hits = fetcher returned KV, misses =
        # fetcher declined (None), fetch_errors = fetcher raised.
        self.fetch_stats = TierStats()  # guarded-by: _lock
        self._fetch_error_listeners: list = []  # guarded-by: _lock

    def set_miss_fetcher(self, fn) -> None:
        """Install (or clear, with ``None``) the both-tier-miss hook."""
        self._miss_fetcher = fn

    def add_fetch_error_listener(self, fn) -> None:
        """Register ``fn(key, exc)``, called (outside the store lock) each
        time the miss fetcher raises. The runtime uses it to export
        per-reason error counters."""
        with self._lock:
            self._fetch_error_listeners.append(fn)

    def _run_miss_fetcher(self, key: CacheKey):
        """Invoke the miss fetcher, degrading a raised exception into an
        ordinary miss (``None`` → re-encode upstream) after recording it.

        A fetcher blowing up mid-fetch (peer died, socket reset, codec
        mismatch) must not take the serve path down with it — re-encoding
        locally is always a correct fallback. Runs outside the store lock,
        like the fetcher itself.
        """
        fetcher = self._miss_fetcher
        if fetcher is None:
            return None
        try:
            kv = fetcher(key)
        except Exception as exc:
            with self._lock:
                self.fetch_stats.fetch_errors += 1
                listeners = list(self._fetch_error_listeners)
            for listener in listeners:
                listener(key, exc)
            return None
        with self._lock:
            if kv is None:
                self.fetch_stats.misses += 1
            else:
                self.fetch_stats.hits += 1
        return kv

    def tier(self, name: str) -> CacheTier:
        if name == "gpu":
            return self.gpu
        if name == "cpu":
            return self.cpu
        raise KeyError(f"unknown tier {name!r}; expected 'gpu' or 'cpu'")

    def put(
        self, key: CacheKey, kv: ModuleKV, tier: str = "gpu", pinned: bool = False
    ) -> CacheEntry:
        """Store in ``tier``, spilling to CPU if the GPU tier cannot fit it.

        The whole attempt-then-spill sequence runs under the shared lock
        so a concurrent ``fetch`` never observes the entry missing from
        both tiers mid-spill.
        """
        with self._lock:
            try:
                return self.tier(tier).put(key, kv, pinned=pinned)
            except CapacityError:
                if tier == "gpu":
                    return self.cpu.put(key, kv, pinned=pinned)
                raise

    def fetch(self, key: CacheKey) -> FetchResult | None:
        with self._lock:
            entry = self.gpu.get(key)
            if entry is not None:
                return FetchResult(entry=entry, tier="gpu", source="gpu")
            entry = self.cpu.get(key)
            if entry is not None:
                return FetchResult(entry=entry, tier="cpu", source="cpu")
        # Full miss: give the get-or-fetch hook a chance to pull the
        # entry from elsewhere (a cluster peer). Deliberately outside the
        # lock — the hook may block on I/O, and it re-enters ``put``.
        kv = self._run_miss_fetcher(key)
        if kv is None:
            return None
        self.put(key, kv, tier="gpu")
        with self._lock:
            # peek: the local miss was already counted above, and the
            # entry's recency is fresh from ``put``.
            for tier in (self.gpu, self.cpu):
                entry = tier.peek(key)
                if entry is not None:
                    return FetchResult(entry=entry, tier=tier.name, source="peer")
        return None  # evicted in the gap; treat as a miss

    def peek(self, key: CacheKey) -> CacheEntry | None:
        """Both-tier lookup without touching statistics, recency, or the
        miss fetcher — what a peer exporter serves from."""
        with self._lock:
            return self.gpu.peek(key) or self.cpu.peek(key)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self.gpu or key in self.cpu

    def total_bytes(self) -> int:
        return self.gpu.used_bytes + self.cpu.used_bytes

    def mapped_bytes(self) -> int:
        """Snapshot-mapped bytes across both tiers (see
        :meth:`CacheTier.mapped_bytes`)."""
        with self._lock:
            return self.gpu.mapped_bytes() + self.cpu.mapped_bytes()

    def remove_matching(self, schema: str, module: str | None = None) -> int:
        """Drop every entry of ``schema`` (optionally restricted to one
        module) from both tiers. Returns the number of entries removed —
        the storage half of :meth:`PromptCache.invalidate`."""
        removed = 0
        with self._lock:
            for tier in (self.gpu, self.cpu):
                for key in tier.keys():
                    if key.schema != schema:
                        continue
                    if module is not None and key.module != module:
                        continue
                    tier.remove(key)
                    removed += 1
        return removed

    def sweep_expired(self) -> int:
        """Expire idle entries in both tiers; returns the total dropped."""
        with self._lock:
            return self.gpu.sweep_expired() + self.cpu.sweep_expired()

    def prefetch(self, keys: list[CacheKey]) -> int:
        """Promote CPU-resident modules into the GPU tier ahead of use —
        the union-aware prefetching the paper floats in §3.2.3. Returns how
        many modules were promoted; missing or already-resident keys are
        skipped, and promotion stops silently when the GPU tier is full of
        pinned entries."""
        promoted = 0
        with self._lock:
            for key in keys:
                if key in self.gpu:
                    continue
                entry = self.cpu.peek(key)
                if entry is None:
                    continue
                try:
                    self.gpu.put(key, entry.kv, pinned=entry.pinned)
                except CapacityError:
                    break
                promoted += 1
        return promoted
