"""Word-level tokenizer for fast unit tests.

Splits on whitespace and grows its vocabulary on first sight of each word.
Not suitable for real workloads (unbounded vocabulary, lossy whitespace) but
ideal where tests need stable small token sequences without BPE training.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.tokenizer.vocab import SpecialTokens, Vocab


class WhitespaceTokenizer:
    """Open-vocabulary word tokenizer; decode joins with single spaces."""

    def __init__(self, specials: SpecialTokens | None = None) -> None:
        self.vocab = Vocab(specials or SpecialTokens())
        self.specials = self.vocab.specials

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    @property
    def pad_id(self) -> int:
        return self.vocab.pad_id

    @property
    def unk_id(self) -> int:
        return self.vocab.unk_id

    @property
    def bos_id(self) -> int:
        return self.vocab.bos_id

    @property
    def eos_id(self) -> int:
        return self.vocab.eos_id

    def encode(self, text: str, *, add_bos: bool = False, add_eos: bool = False) -> list[int]:
        ids = [self.vocab.bos_id] if add_bos else []
        ids.extend(self.vocab.add(word) for word in text.split())
        if add_eos:
            ids.append(self.vocab.eos_id)
        return ids

    def decode(self, ids: Iterable[int], *, skip_specials: bool = False) -> str:
        specials = set(self.specials.as_list()) if skip_specials else set()
        words = (self.vocab.token_of(i) for i in ids)
        return " ".join(w for w in words if w not in specials)
