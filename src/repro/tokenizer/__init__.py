"""Tokenizer substrate: from-scratch byte-level BPE with special tokens.

The paper's prototype sits on HuggingFace tokenizers; this package provides
the equivalent functionality offline:

- :class:`SpecialTokens` / :class:`Vocab` — id/token bookkeeping with the
  ``<s>``, ``</s>``, ``<unk>``, ``<pad>`` specials Prompt Cache relies on
  (``<unk>`` is the parameter-placeholder token, paper §3.3).
- :class:`BPETokenizer` — a trainable, deterministic byte-level BPE encoder
  with guaranteed byte round-trip (every byte is in the base vocabulary).
- :class:`WhitespaceTokenizer` — a trivial word-level tokenizer used by
  fast unit tests where BPE training would be noise.
- :func:`default_tokenizer` — a process-wide tokenizer trained once on the
  seeded synthetic corpus so that all examples/benchmarks share token ids.
"""

from repro.tokenizer.vocab import SpecialTokens, Vocab
from repro.tokenizer.bpe import BPETokenizer, train_bpe
from repro.tokenizer.whitespace import WhitespaceTokenizer
from repro.tokenizer.default import default_tokenizer

__all__ = [
    "SpecialTokens",
    "Vocab",
    "BPETokenizer",
    "train_bpe",
    "WhitespaceTokenizer",
    "default_tokenizer",
]
