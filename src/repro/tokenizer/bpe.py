"""Byte-level byte-pair-encoding tokenizer, trainable and deterministic.

The base vocabulary always contains all 256 single bytes, so ``decode ∘
encode`` is the identity on arbitrary text regardless of training corpus —
the round-trip invariant the property tests rely on.

Training is classic BPE (Sennrich et al.): count adjacent symbol pairs over
a pre-tokenized corpus and repeatedly merge the most frequent pair. Ties are
broken by byte order so two trainings on the same corpus are identical.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from collections.abc import Iterable
from pathlib import Path

from repro.tokenizer.vocab import SpecialTokens

# Words keep their leading whitespace attached (GPT-2 style) so that
# tokenization is invariant to where a text is split into chunks.
_PRETOKEN_RE = re.compile(rb"\s*\S+|\s+$|\s+(?=\s)")

_NUM_SPECIALS = 4  # pad, unk, bos, eos occupy ids 0..3


class BPETokenizer:
    """Encoder/decoder over a trained merge table.

    Ids are laid out as ``[specials (4)] [single bytes (256)] [merges...]``,
    so the id space is stable: special ids never move and byte ids are
    ``4 + byte_value`` in every tokenizer.
    """

    def __init__(
        self,
        merges: list[tuple[int, int]],
        specials: SpecialTokens | None = None,
    ) -> None:
        self.specials = specials or SpecialTokens()
        # symbol id -> bytes it spells; first 256 entries are single bytes.
        self._symbols: list[bytes] = [bytes([b]) for b in range(256)]
        # (left symbol id, right symbol id) -> (rank, merged symbol id)
        self._merge_table: dict[tuple[int, int], tuple[int, int]] = {}
        for rank, (left, right) in enumerate(merges):
            merged = len(self._symbols)
            self._symbols.append(self._symbols[left] + self._symbols[right])
            self._merge_table[(left, right)] = (rank, merged)
        self._special_ids = {
            tok: i for i, tok in enumerate(self.specials.as_list())
        }
        self._special_re = re.compile(
            "(" + "|".join(re.escape(t) for t in self.specials.as_list()) + ")"
        )
        self._word_cache: dict[bytes, list[int]] = {}

    # -- vocabulary ---------------------------------------------------------

    def __len__(self) -> int:
        return _NUM_SPECIALS + len(self._symbols)

    @property
    def vocab_size(self) -> int:
        return len(self)

    @property
    def pad_id(self) -> int:
        return self._special_ids[self.specials.pad]

    @property
    def unk_id(self) -> int:
        return self._special_ids[self.specials.unk]

    @property
    def bos_id(self) -> int:
        return self._special_ids[self.specials.bos]

    @property
    def eos_id(self) -> int:
        return self._special_ids[self.specials.eos]

    def merges(self) -> list[tuple[int, int]]:
        """The trained merge list in rank order (a copy)."""
        ordered = sorted(self._merge_table.items(), key=lambda kv: kv[1][0])
        return [pair for pair, _ in ordered]

    # -- encoding -----------------------------------------------------------

    def encode(self, text: str, *, add_bos: bool = False, add_eos: bool = False) -> list[int]:
        """Tokenize ``text`` into ids.

        Literal occurrences of special-token strings (``<s>``, ``<unk>``, …)
        are mapped to their special ids — chat templates and parameter
        placeholders rely on this.
        """
        ids: list[int] = [self.bos_id] if add_bos else []
        for chunk in self._special_re.split(text):
            if not chunk:
                continue
            special = self._special_ids.get(chunk)
            if special is not None:
                ids.append(special)
                continue
            data = chunk.encode("utf-8")
            for match in _PRETOKEN_RE.finditer(data):
                ids.extend(self._encode_word(match.group()))
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def _encode_word(self, word: bytes) -> list[int]:
        cached = self._word_cache.get(word)
        if cached is not None:
            return cached
        # Start from single-byte symbols; greedily apply the lowest-rank
        # merge present until no trained merge applies.
        symbols = [b for b in word]
        while len(symbols) > 1:
            best_rank = None
            best_idx = -1
            for i in range(len(symbols) - 1):
                entry = self._merge_table.get((symbols[i], symbols[i + 1]))
                if entry is not None and (best_rank is None or entry[0] < best_rank):
                    best_rank = entry[0]
                    best_idx = i
            if best_rank is None:
                break
            merged = self._merge_table[(symbols[best_idx], symbols[best_idx + 1])][1]
            symbols[best_idx : best_idx + 2] = [merged]
        ids = [s + _NUM_SPECIALS for s in symbols]
        if len(self._word_cache) < 65536:
            self._word_cache[word] = ids
        return ids

    # -- decoding -----------------------------------------------------------

    def decode(self, ids: Iterable[int], *, skip_specials: bool = False) -> str:
        """Reconstruct text from ids (lossless for non-special ids)."""
        parts: list[bytes] = []
        specials = self.specials.as_list()
        for idx in ids:
            if idx < _NUM_SPECIALS:
                if not skip_specials:
                    parts.append(specials[idx].encode("utf-8"))
                continue
            sym = idx - _NUM_SPECIALS
            if not 0 <= sym < len(self._symbols):
                raise IndexError(f"token id {idx} outside vocabulary of size {len(self)}")
            parts.append(self._symbols[sym])
        return b"".join(parts).decode("utf-8", errors="replace")

    def token_of(self, idx: int) -> str:
        """Printable form of a single token id (debugging aid)."""
        if idx < _NUM_SPECIALS:
            return self.specials.as_list()[idx]
        return self._symbols[idx - _NUM_SPECIALS].decode("utf-8", errors="replace")

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = {"merges": self.merges(), "specials": self.specials.as_list()}
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "BPETokenizer":
        payload = json.loads(Path(path).read_text())
        pad, unk, bos, eos = payload["specials"]
        return cls(
            merges=[tuple(m) for m in payload["merges"]],
            specials=SpecialTokens(pad=pad, unk=unk, bos=bos, eos=eos),
        )


def train_bpe(
    corpus: Iterable[str],
    vocab_size: int,
    specials: SpecialTokens | None = None,
) -> BPETokenizer:
    """Train a byte-level BPE tokenizer to ``vocab_size`` total ids.

    ``vocab_size`` must cover the 4 specials plus the 256 byte symbols; the
    remainder becomes learned merges. Training is deterministic: pair counts
    tie-break on the merged byte string.
    """
    num_merges = vocab_size - _NUM_SPECIALS - 256
    if num_merges < 0:
        raise ValueError(
            f"vocab_size must be at least {_NUM_SPECIALS + 256}, got {vocab_size}"
        )

    word_counts: Counter[bytes] = Counter()
    for text in corpus:
        data = text.encode("utf-8")
        for match in _PRETOKEN_RE.finditer(data):
            word_counts[match.group()] += 1

    # Each word is a mutable symbol-id sequence; symbols grow as we merge.
    words: list[list[int]] = [list(w) for w in word_counts]
    counts = list(word_counts.values())
    symbols: list[bytes] = [bytes([b]) for b in range(256)]
    merges: list[tuple[int, int]] = []

    pair_counts: Counter[tuple[int, int]] = Counter()
    for word, count in zip(words, counts):
        for pair in zip(word, word[1:]):
            pair_counts[pair] += count

    for _ in range(num_merges):
        if not pair_counts:
            break
        # Max count; ties broken toward the lexicographically smallest merged
        # byte string (negated bytes make "smaller" compare as "larger").
        best = max(
            pair_counts.items(),
            key=lambda kv: (kv[1], tuple(-b for b in symbols[kv[0][0]] + symbols[kv[0][1]])),
        )[0]
        if pair_counts[best] < 2:
            break  # nothing left worth merging
        merged_id = len(symbols)
        symbols.append(symbols[best[0]] + symbols[best[1]])
        merges.append(best)
        # Apply the merge in place and update pair counts incrementally.
        for word, count in zip(words, counts):
            i = 0
            while i < len(word) - 1:
                if word[i] == best[0] and word[i + 1] == best[1]:
                    if i > 0:
                        pair_counts[(word[i - 1], word[i])] -= count
                        pair_counts[(word[i - 1], merged_id)] += count
                    if i + 2 < len(word):
                        pair_counts[(word[i + 1], word[i + 2])] -= count
                        pair_counts[(merged_id, word[i + 2])] += count
                    word[i : i + 2] = [merged_id]
                else:
                    i += 1
        del pair_counts[best]
        pair_counts = +pair_counts  # drop non-positive entries

    return BPETokenizer(merges=merges, specials=specials)
