"""Process-wide default tokenizer.

Benchmarks, examples, and the synthetic dataset suite must agree on token
ids, so they all share one BPE tokenizer trained on the seeded synthetic
corpus. Training is deterministic, hence so are the resulting ids.
"""

from __future__ import annotations

from functools import lru_cache

from repro.tokenizer.bpe import BPETokenizer, train_bpe

_DEFAULT_VOCAB_SIZE = 2048


@lru_cache(maxsize=4)
def default_tokenizer(vocab_size: int = _DEFAULT_VOCAB_SIZE) -> BPETokenizer:
    """The shared tokenizer, trained once per process and memoized.

    Imported lazily from :mod:`repro.datasets.corpus` to keep the tokenizer
    package free of dataset dependencies.
    """
    from repro.datasets.corpus import training_corpus

    return train_bpe(training_corpus(), vocab_size=vocab_size)
