"""Vocabulary and special-token bookkeeping shared by all tokenizers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SpecialTokens:
    """Reserved tokens occupying the first ids of every vocabulary.

    ``unk`` doubles as the parameter-placeholder token in Prompt Cache
    schemas (paper §3.3): parameter slots are encoded as runs of ``<unk>``
    whose attention states are later overwritten by real arguments.
    """

    pad: str = "<pad>"
    unk: str = "<unk>"
    bos: str = "<s>"
    eos: str = "</s>"

    def as_list(self) -> list[str]:
        return [self.pad, self.unk, self.bos, self.eos]


@dataclass
class Vocab:
    """Bidirectional token/id mapping.

    Ids are dense and assigned in insertion order; special tokens always come
    first so their ids are stable across differently-trained tokenizers.
    """

    specials: SpecialTokens = field(default_factory=SpecialTokens)

    def __post_init__(self) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for tok in self.specials.as_list():
            self.add(tok)

    def add(self, token: str) -> int:
        """Insert ``token`` if absent; return its id either way."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    def id_of(self, token: str) -> int:
        """Id of ``token``, or the ``<unk>`` id when unknown."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, idx: int) -> str:
        if not 0 <= idx < len(self._id_to_token):
            raise IndexError(f"token id {idx} outside vocabulary of size {len(self)}")
        return self._id_to_token[idx]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[self.specials.pad]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[self.specials.unk]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[self.specials.bos]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[self.specials.eos]

    def tokens(self) -> list[str]:
        """All tokens in id order (a copy)."""
        return list(self._id_to_token)
