"""Token samplers for the decode loop.

The paper's accuracy experiments use deterministic greedy sampling so that
baseline and cached runs are directly comparable (§5.3); greedy is therefore
the default everywhere. Temperature/top-k/top-p samplers round out the
engine for the qualitative examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.layers import softmax


class GreedySampler:
    """Always the arg-max token; deterministic by construction."""

    def __call__(self, logits: np.ndarray) -> int:
        return int(np.argmax(logits))


@dataclass
class TemperatureSampler:
    """Softmax sampling at a temperature, with optional top-k / top-p cuts."""

    temperature: float = 1.0
    top_k: int | None = None
    top_p: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError("temperature must be positive; use GreedySampler for argmax")
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, logits: np.ndarray) -> int:
        scaled = logits / np.float32(self.temperature)
        if self.top_k is not None and self.top_k < scaled.shape[-1]:
            cutoff = np.partition(scaled, -self.top_k)[-self.top_k]
            scaled = np.where(scaled < cutoff, np.float32(-1e9), scaled)
        probs = softmax(scaled)
        if self.top_p is not None:
            order = np.argsort(probs)[::-1]
            cumulative = np.cumsum(probs[order])
            keep = cumulative <= self.top_p
            keep[0] = True  # always keep the most likely token
            mask = np.zeros_like(probs, dtype=bool)
            mask[order[keep]] = True
            probs = np.where(mask, probs, 0.0)
            probs = probs / probs.sum()
        return int(self._rng.choice(probs.shape[-1], p=probs))
