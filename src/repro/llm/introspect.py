"""Attention introspection: where does the model actually look?

Analysis utilities over the engine's attention-trace hook. Used by the
``attention_probe`` example to demonstrate that the trained recall models
answer questions with an induction-style head — the final prompt token
attends to the fact location inside the (cached) document module — and
that the mechanism survives Prompt Cache's modular encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.kv import KVCache
from repro.llm.models import TransformerModel


@dataclass
class AttentionTrace:
    """Per-layer post-softmax attention of one forward pass.

    ``weights[layer]`` has shape (n_heads, Tq, Tk); ``key_positions[layer]``
    gives the absolute position ID of each key column.
    """

    weights: list[np.ndarray]
    key_positions: list[np.ndarray]
    query_positions: np.ndarray

    @property
    def n_layers(self) -> int:
        return len(self.weights)

    def top_attended(
        self, layer: int, query_index: int = -1, k: int = 3
    ) -> list[tuple[int, float]]:
        """(key position ID, max-over-heads weight) of the ``k`` keys the
        given query attends to most strongly."""
        per_key = self.weights[layer][:, query_index, :].max(axis=0)
        order = np.argsort(per_key)[::-1][:k]
        positions = self.key_positions[layer]
        return [(int(positions[i]), float(per_key[i])) for i in order]

    def attention_mass_on(
        self, layer: int, positions: set[int], query_index: int = -1
    ) -> float:
        """Fraction of (head-averaged) attention the query spends on the
        given key position IDs."""
        mean_weights = self.weights[layer][:, query_index, :].mean(axis=0)
        mask = np.isin(self.key_positions[layer], list(positions))
        return float(mean_weights[mask].sum())


def attention_trace(
    model: TransformerModel,
    token_ids: np.ndarray,
    position_ids: np.ndarray | None = None,
    cache: KVCache | None = None,
) -> tuple[np.ndarray, AttentionTrace]:
    """Forward pass that also returns the full attention map.

    ``cache`` may be pre-populated (e.g. by Prompt Cache module splicing);
    the trace then shows new tokens attending into the cached states.
    Returns (logits, trace).
    """
    token_ids = np.asarray(token_ids)
    if position_ids is None:
        start = len(cache) if cache is not None else 0
        position_ids = np.arange(start, start + len(token_ids))
    position_ids = np.asarray(position_ids)
    if cache is None:
        cache = model.new_cache(capacity=len(token_ids))
    raw: list = []
    logits = model.forward(token_ids, position_ids, cache, trace=raw)
    return logits, AttentionTrace(
        weights=[w for w, _ in raw],
        key_positions=[p for _, p in raw],
        query_positions=position_ids,
    )


def induction_score(
    trace: AttentionTrace, fact_positions: set[int], query_index: int = -1
) -> float:
    """How strongly (max over layers) the query token attends into the
    fact span — the retrieval signature of a trained recall model."""
    return max(
        trace.attention_mass_on(layer, fact_positions, query_index)
        for layer in range(trace.n_layers)
    )
