"""Autoregressive generation loops: the three regimes of paper Figure 1.

- :func:`generate_no_cache` — full recompute of every attention state at
  every step (Fig 1a). Exists as the pedagogical/correctness baseline.
- :func:`generate` — standard KV-cache generation (Fig 1b): one prefill
  pass over the prompt, then one-token steps. This is the paper's baseline
  system.
- Prompt Cache generation (Fig 1c) lives in :mod:`repro.cache.engine`; it
  produces a pre-populated :class:`~repro.llm.kv.KVCache` and then reuses
  :func:`decode_loop` below, since decoding is identical after the first
  token (paper §3.4).

All loops record wall-clock TTFT (time to first token) and per-step TTST
(time to subsequent tokens), the two quantities every figure reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.llm.kv import KVCache
from repro.llm.models import TransformerModel
from repro.llm.sampling import GreedySampler


@dataclass
class GenerationResult:
    """Tokens plus the latency breakdown the benchmarks consume."""

    prompt_ids: list[int]
    output_ids: list[int]
    ttft_s: float
    step_times_s: list[float] = field(default_factory=list)

    @property
    def ttst_s(self) -> float:
        """Mean time-to-subsequent-token (0.0 when only one token was made)."""
        return float(np.mean(self.step_times_s)) if self.step_times_s else 0.0


def prefill(
    model: TransformerModel,
    token_ids: np.ndarray,
    cache: KVCache,
    position_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Run the prompt through the model, filling ``cache``; returns the
    last token's logits (the input to the first sampling decision)."""
    token_ids = np.asarray(token_ids)
    if position_ids is None:
        start = len(cache)
        position_ids = np.arange(start, start + token_ids.shape[0])
    logits = model.forward(token_ids, np.asarray(position_ids), cache)
    return logits[-1]


def decode_loop(
    model: TransformerModel,
    cache: KVCache,
    first_logits: np.ndarray,
    *,
    max_new_tokens: int,
    next_position: int,
    sampler=None,
    stop_ids: set[int] | None = None,
) -> tuple[list[int], list[float]]:
    """Sample up to ``max_new_tokens`` one token at a time.

    ``next_position`` is the position ID of the first generated token; under
    Prompt Cache this continues from the end of the schema layout rather
    than ``len(cache)``.
    """
    sampler = sampler or GreedySampler()
    stop_ids = stop_ids or set()
    tokens: list[int] = []
    step_times: list[float] = []
    logits = first_logits
    position = next_position
    for _ in range(max_new_tokens):
        # The step timer starts before sampling so each recorded step is
        # one full sample-then-forward cycle — with non-greedy samplers
        # the sampling work is real and must land in TTST, not vanish
        # between the timers. (The final token's sampling has no forward
        # after it and stays uncharged, same as before.)
        step_start = time.perf_counter()
        token = sampler(logits)
        tokens.append(token)
        if token in stop_ids or len(tokens) == max_new_tokens:
            break
        logits = model.forward(
            np.asarray([token]), np.asarray([position]), cache
        )[-1]
        step_times.append(time.perf_counter() - step_start)
        position += 1
    return tokens, step_times


def generate(
    model: TransformerModel,
    prompt_ids: list[int],
    *,
    max_new_tokens: int = 32,
    sampler=None,
    stop_ids: set[int] | None = None,
) -> GenerationResult:
    """KV-cache generation (the paper's baseline): prefill once, then decode."""
    cache = model.new_cache(capacity=len(prompt_ids) + max_new_tokens)
    start = time.perf_counter()
    logits = prefill(model, np.asarray(prompt_ids), cache)
    ttft = time.perf_counter() - start
    tokens, step_times = decode_loop(
        model,
        cache,
        logits,
        max_new_tokens=max_new_tokens,
        next_position=len(prompt_ids),
        sampler=sampler,
        stop_ids=stop_ids,
    )
    return GenerationResult(list(prompt_ids), tokens, ttft, step_times)


def generate_batch(
    model: TransformerModel,
    prompts: list[list[int]],
    *,
    max_new_tokens: int = 32,
    sampler=None,
    stop_ids: set[int] | None = None,
) -> list[GenerationResult]:
    """Iteration-level batched generation: per-sequence prefill, then one
    :meth:`~repro.llm.models.TransformerModel.forward_decode_batch` call
    per step across every still-running sequence.

    A sequence that samples a stop token (or exhausts its budget) drops
    out of the batch immediately; the survivors keep stepping together.
    Greedy outputs are byte-identical to per-prompt :func:`generate` —
    the correctness contract the serving scheduler is built on.
    """
    sampler = sampler or GreedySampler()
    stop_ids = stop_ids or set()

    states = []
    for prompt_ids in prompts:
        cache = model.new_cache(capacity=len(prompt_ids) + max_new_tokens)
        start = time.perf_counter()
        logits = prefill(model, np.asarray(prompt_ids), cache)
        ttft = time.perf_counter() - start
        states.append({
            "prompt": list(prompt_ids),
            "cache": cache,
            "logits": logits,
            "position": len(prompt_ids),
            "tokens": [],
            "steps": [],
            "ttft": ttft,
        })

    running = [s for s in states if max_new_tokens > 0]
    while running:
        step_start = time.perf_counter()
        survivors = []
        for s in running:
            token = sampler(s["logits"])
            s["tokens"].append(token)
            if token not in stop_ids and len(s["tokens"]) < max_new_tokens:
                survivors.append(s)
        if not survivors:
            break
        logits = model.forward_decode_batch(
            np.asarray([s["tokens"][-1] for s in survivors]),
            np.asarray([s["position"] for s in survivors]),
            [s["cache"] for s in survivors],
        )
        elapsed = time.perf_counter() - step_start
        for i, s in enumerate(survivors):
            s["logits"] = logits[i]
            s["position"] += 1
            s["steps"].append(elapsed)
        running = survivors

    return [
        GenerationResult(s["prompt"], s["tokens"], s["ttft"], s["steps"])
        for s in states
    ]


def generate_no_cache(
    model: TransformerModel,
    prompt_ids: list[int],
    *,
    max_new_tokens: int = 32,
    sampler=None,
    stop_ids: set[int] | None = None,
) -> GenerationResult:
    """Naive autoregression (Fig 1a): every step recomputes the full prefix.

    Quadratically slower than :func:`generate` but must produce identical
    greedy outputs — a correctness check on the KV cache itself.
    """
    sampler = sampler or GreedySampler()
    stop_ids = stop_ids or set()
    sequence = list(prompt_ids)
    tokens: list[int] = []
    step_times: list[float] = []
    ttft = 0.0
    for step in range(max_new_tokens):
        cache = model.new_cache(capacity=len(sequence))
        start = time.perf_counter()
        logits = model.forward(
            np.asarray(sequence), np.arange(len(sequence)), cache
        )[-1]
        elapsed = time.perf_counter() - start
        if step == 0:
            ttft = elapsed
        else:
            step_times.append(elapsed)
        token = sampler(logits)
        tokens.append(token)
        sequence.append(token)
        if token in stop_ids:
            break
    return GenerationResult(list(prompt_ids), tokens, ttft, step_times)
