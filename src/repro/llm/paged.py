"""Paged KV storage with refcounted page sharing (paper §3.4).

The paper's batched-serving optimization: "Paged attention can resolve
this issue by sharing the *pointer* to the same prompt module across
different prompts, instead of duplicating the attention states." This
module implements that mechanism with real tensors:

- :class:`PagePool` — fixed-size pages (16 tokens) of K/V storage with
  reference counts and byte accounting;
- :class:`PagedLayerKV` — a drop-in replacement for
  :class:`~repro.llm.kv.LayerKV` backed by a page table; ``fork()`` shares
  pages between sequences, ``append()`` copies-on-write only the final
  partial page;
- :class:`PagedKVCache` — the whole-model view, plus
  :func:`shared_batch_caches` which gives every request in a batch its own
  cache while all of them point at one physical copy of the spliced
  module states.

The engine's forward pass works unchanged on paged caches (it only needs
``keys``/``values``/``positions``/``append``), so the §3.4 memory claim is
demonstrated end-to-end with bit-identical outputs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.contracts import shape_contract
from repro.analysis.locks import ordered_lock
from repro.llm.config import ModelConfig
from repro.llm.kv import ModuleKV, tracked_alloc

PAGE_TOKENS = 16

# Optional refcount/lease auditor (repro.analysis.sanitize). None in
# production: each hook site is a single is-None check.
_AUDITOR = None


def set_page_auditor(auditor) -> None:
    """Install (or clear, with ``None``) the sanitizer auditor that
    shadows page refcounts and mirror-lease transitions."""
    global _AUDITOR
    _AUDITOR = auditor

# Spare capacity (tokens) built into a freshly gathered mirror so the
# first decode steps extend in place instead of growing immediately.
_MIRROR_HEADROOM = 64


@dataclass
class PoolStats:
    pages_allocated: int = 0
    pages_freed: int = 0
    peak_live_pages: int = 0
    cow_copies: int = 0
    mirror_gathers: int = 0
    # Decoders that lost the mirror-lease race and paid a contiguous
    # prefix memcpy — the per-sequence cost of decoding many forks of one
    # base concurrently (the continuous-batching steady state is one seed
    # per extra in-flight sequence, then in-place extension).
    mirror_private_seeds: int = 0


class PagePool:
    """Allocator of fixed-size KV pages for one layer shape."""

    def __init__(
        self, n_kv_heads: int, head_dim: int, page_tokens: int = PAGE_TOKENS
    ) -> None:
        if page_tokens < 1:
            raise ValueError("page_tokens must be positive")
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.page_tokens = page_tokens
        self._keys: list[np.ndarray] = []
        self._values: list[np.ndarray] = []
        self._positions: list[np.ndarray] = []
        self._used: list[int] = []  # tokens filled per page
        self._refcounts: list[int] = []
        self._free: list[int] = []
        self.stats = PoolStats()

    # -- allocation ---------------------------------------------------------

    def allocate(self) -> int:
        if self._free:
            page = self._free.pop()
            self._used[page] = 0
            self._refcounts[page] = 1
            if _AUDITOR is not None:
                _AUDITOR.on_allocate(self, page)
            return page
        page = len(self._keys)
        shape = (self.n_kv_heads, self.page_tokens, self.head_dim)
        self._keys.append(tracked_alloc(shape))
        self._values.append(tracked_alloc(shape))
        self._positions.append(np.empty(self.page_tokens, dtype=np.int64))
        self._used.append(0)
        self._refcounts.append(1)
        self.stats.pages_allocated += 1
        self.stats.peak_live_pages = max(self.stats.peak_live_pages, self.live_pages)
        if _AUDITOR is not None:
            _AUDITOR.on_allocate(self, page)
        return page

    def retain(self, page: int) -> None:
        if _AUDITOR is not None:
            _AUDITOR.on_retain(self, page)
        self._refcounts[page] += 1

    def release(self, page: int) -> None:
        if _AUDITOR is not None:
            _AUDITOR.on_release(self, page)
        self._refcounts[page] -= 1
        if self._refcounts[page] == 0:
            self._free.append(page)
            self.stats.pages_freed += 1

    def refcount(self, page: int) -> int:
        return self._refcounts[page]

    @property
    def live_pages(self) -> int:
        return len(self._keys) - len(self._free)

    def physical_bytes(self) -> int:
        """Bytes of live page storage (shared pages counted once)."""
        if not self._keys:
            return 0
        per_page = (
            self._keys[0].nbytes + self._values[0].nbytes + self._positions[0].nbytes
        )
        return self.live_pages * per_page

    # -- page data ------------------------------------------------------------

    def write(self, page: int, offset: int, k, v, positions) -> int:
        """Fill ``page`` from ``offset``; returns tokens written."""
        count = min(self.page_tokens - offset, k.shape[1])
        self._keys[page][:, offset : offset + count] = k[:, :count]
        self._values[page][:, offset : offset + count] = v[:, :count]
        self._positions[page][offset : offset + count] = positions[:count]
        self._used[page] = offset + count
        return count

    def copy_page(self, page: int) -> int:
        """Private duplicate of ``page`` (copy-on-write support)."""
        fresh = self.allocate()
        self._keys[fresh][:] = self._keys[page]
        self._values[fresh][:] = self._values[page]
        self._positions[fresh][:] = self._positions[page]
        self._used[fresh] = self._used[page]
        self.stats.cow_copies += 1
        return fresh

    def used(self, page: int) -> int:
        return self._used[page]

    def page_views(self, page: int, upto: int):
        return (
            self._keys[page][:, :upto],
            self._values[page][:, :upto],
            self._positions[page][:upto],
        )


class _Mirror:
    """Shared contiguous image of a paged sequence, with spare capacity.

    The attention kernel wants flat ``(n_kv_heads, T, head_dim)`` arrays;
    re-gathering the page table on every decode step is O(T) per step. A
    mirror is gathered once and then *extended in place*: appends write the
    new tokens at the tail, O(added) per step.

    Several forks of one sequence share a single mirror. Exactly one of
    them may hold the **lease** — the right to extend the image in place.
    The lease is taken lazily by the first sharer that appends while the
    image tail matches its own length, and released (with the tail
    truncated back to the shared prefix) when that sequence is freed, so
    the next fork of the same base extends the same buffers with zero
    prefix copies. Sharers that cannot take the lease fall back to a
    private mirror seeded by one contiguous memcpy of the shared prefix.

    Invariant: for every sequence S referencing this mirror,
    ``mirror[:S._mirror_len]`` equals S's first ``_mirror_len`` tokens and
    ``S._mirror_len <= self.length`` — in-place writes only ever land at
    offsets >= every sharer's prefix.
    """

    __slots__ = (
        "keys", "values", "positions", "length",
        "lease", "lease_start", "fork_high_water", "lock",
    )

    def __init__(
        self, n_kv_heads: int, head_dim: int, capacity: int, length: int
    ) -> None:
        self.keys = tracked_alloc((n_kv_heads, capacity, head_dim))
        self.values = tracked_alloc((n_kv_heads, capacity, head_dim))
        self.positions = np.empty(capacity, dtype=np.int64)
        self.length = length
        self.lease: "PagedLayerKV | None" = None
        self.lease_start = length
        self.fork_high_water = length
        # Serializes lease transitions and tail writes when forks decode
        # from different server worker threads. Non-reentrant by design:
        # re-entry would mean a lease transition raced itself.
        self.lock = ordered_lock(
            "paged.mirror", after=("engine.fastpath",), reentrant=False
        )

    @property
    def capacity(self) -> int:
        return self.keys.shape[1]

    def grow(self, total: int) -> None:
        if total <= self.capacity:
            return
        new_capacity = max(total, 2 * self.capacity)
        for name in ("keys", "values"):
            old = getattr(self, name)
            buf = tracked_alloc((old.shape[0], new_capacity, old.shape[2]))
            buf[:, : self.length] = old[:, : self.length]
            setattr(self, name, buf)
        positions = np.empty(new_capacity, dtype=np.int64)
        positions[: self.length] = self.positions[: self.length]
        self.positions = positions


class PagedLayerKV:
    """LayerKV-compatible store backed by a page table.

    Pages remain the source of truth (they are what ``fork()`` shares and
    what copy-on-write protects); ``keys``/``values``/``positions`` are
    served from a contiguous :class:`_Mirror` that is gathered lazily on
    first access and extended in place afterwards.
    """

    def __init__(self, pool: PagePool) -> None:
        self.pool = pool
        self.n_kv_heads = pool.n_kv_heads
        self.head_dim = pool.head_dim
        self._table: list[int] = []
        self._length = 0
        self._mirror: _Mirror | None = None
        self._mirror_len = 0
        # Highest cached position ID (see LayerKV.max_position): the
        # decode fast path's O(1) mask-skip test.
        self.max_position = -1

    def __len__(self) -> int:
        return self._length

    @property
    def page_table(self) -> list[int]:
        return list(self._table)

    # -- mutation ---------------------------------------------------------------

    @shape_contract(keys="(n_kv_heads, T, head_dim)", values="(n_kv_heads, T, head_dim)")
    def append(self, keys, values, positions) -> None:
        added = keys.shape[1]
        if values.shape[1] != added or len(positions) != added:
            raise ValueError("keys, values and positions must agree on length")
        offset = 0
        while offset < added:
            tail_used = self._length % self.pool.page_tokens
            if self._table and tail_used != 0:
                page = self._table[-1]
                if self.pool.refcount(page) > 1:
                    # Copy-on-write: the partial tail is shared with a
                    # sibling sequence; take a private copy first.
                    private = self.pool.copy_page(page)
                    self.pool.release(page)
                    self._table[-1] = private
                    page = private
            else:
                page = self.pool.allocate()
                self._table.append(page)
                tail_used = 0
            wrote = self.pool.write(
                page, tail_used,
                keys[:, offset:], values[:, offset:], positions[offset:],
            )
            offset += wrote
            self._length += wrote
        if added:
            self.max_position = max(self.max_position, int(positions.max()))
        if self._mirror is not None:
            self._extend_mirror(keys, values, positions)

    @shape_contract(keys="(n_kv_heads, T, head_dim)", values="(n_kv_heads, T, head_dim)")
    def _extend_mirror(self, keys, values, positions) -> None:
        mirror = self._mirror
        added = keys.shape[1]
        with mirror.lock:
            if mirror.lease is None and mirror.length == self._mirror_len:
                mirror.lease = self
                mirror.lease_start = self._mirror_len
            holds_lease = mirror.lease is self
        if holds_lease:
            # We own the tail: extend the shared image in place.
            if _AUDITOR is not None:
                _AUDITOR.on_inplace_extend(self, mirror)
            mirror.grow(mirror.length + added)
            end = mirror.length + added
            mirror.keys[:, mirror.length : end] = keys
            mirror.values[:, mirror.length : end] = values
            mirror.positions[mirror.length : end] = positions
            mirror.length = end
            self._mirror_len = end
            return
        # Another sequence is extending the shared image — seed a private
        # mirror with one contiguous memcpy of the shared prefix.
        self.pool.stats.mirror_private_seeds += 1
        prefix = self._mirror_len
        total = prefix + added
        fresh = _Mirror(
            self.n_kv_heads, self.head_dim,
            capacity=max(total + _MIRROR_HEADROOM, 1), length=total,
        )
        fresh.keys[:, :prefix] = mirror.keys[:, :prefix]
        fresh.values[:, :prefix] = mirror.values[:, :prefix]
        fresh.positions[:prefix] = mirror.positions[:prefix]
        fresh.keys[:, prefix:total] = keys
        fresh.values[:, prefix:total] = values
        fresh.positions[prefix:total] = positions
        fresh.lease = self
        fresh.lease_start = prefix
        fresh.fork_high_water = prefix
        self._mirror = fresh
        self._mirror_len = total

    def reserve(self, total: int) -> None:
        """Interface parity with LayerKV; pages allocate lazily."""

    def fork(self) -> "PagedLayerKV":
        """A new sequence sharing every current page (refcounted)."""
        sibling = PagedLayerKV(self.pool)
        sibling._table = list(self._table)
        sibling._length = self._length
        sibling.max_position = self.max_position
        for page in sibling._table:
            self.pool.retain(page)
        if self._mirror is not None:
            sibling._mirror = self._mirror
            sibling._mirror_len = self._mirror_len
            with self._mirror.lock:
                self._mirror.fork_high_water = max(
                    self._mirror.fork_high_water, self._mirror_len
                )
        return sibling

    def free(self) -> None:
        mirror = self._mirror
        if mirror is not None:
            with mirror.lock:
                if mirror.lease is self:
                    # Hand the image back: truncate our private tail so
                    # the next fork of the same base can extend in place
                    # from the shared prefix (no live sharer's prefix
                    # extends past this point).
                    mirror.lease = None
                    mirror.length = max(mirror.lease_start, mirror.fork_high_water)
        self._mirror = None
        self._mirror_len = 0
        for page in self._table:
            self.pool.release(page)
        self._table = []
        self._length = 0
        self.max_position = -1

    # -- materialized views --------------------------------------------------------

    def _ensure_mirror(self) -> _Mirror:
        mirror = self._mirror
        if mirror is not None:
            return mirror
        capacity = max(self._length + _MIRROR_HEADROOM, 1)
        mirror = _Mirror(self.n_kv_heads, self.head_dim, capacity, self._length)
        offset = 0
        remaining = self._length
        for page in self._table:
            upto = min(self.pool.page_tokens, remaining)
            k, v, p = self.pool.page_views(page, upto)
            mirror.keys[:, offset : offset + upto] = k
            mirror.values[:, offset : offset + upto] = v
            mirror.positions[offset : offset + upto] = p
            offset += upto
            remaining -= upto
        self.pool.stats.mirror_gathers += 1
        self._mirror = mirror
        self._mirror_len = self._length
        return mirror

    @property
    def keys(self) -> np.ndarray:
        return self._ensure_mirror().keys[:, : self._length]

    @property
    def values(self) -> np.ndarray:
        return self._ensure_mirror().values[:, : self._length]

    @property
    def positions(self) -> np.ndarray:
        return self._ensure_mirror().positions[: self._length]

    def nbytes(self) -> int:
        """This sequence's *logical* bytes (shared pages fully charged)."""
        per_token = 2 * self.n_kv_heads * self.head_dim * 4 + 8
        return self._length * per_token


class PagedKVCache:
    """Whole-model paged cache: one PagedLayerKV per layer.

    Satisfies the engine's cache interface (``layers``, ``reserve``,
    ``__len__``), so :func:`repro.llm.generation.decode_loop` and
    ``model.forward`` run on it unchanged.
    """

    def __init__(self, layers: list[PagedLayerKV], pools: list[PagePool]) -> None:
        self.layers = layers
        self.pools = pools

    @classmethod
    def empty(
        cls,
        config: ModelConfig,
        pools: list[PagePool] | None = None,
        page_tokens: int = PAGE_TOKENS,
    ) -> "PagedKVCache":
        pools = pools or [
            PagePool(config.n_kv_heads, config.head_dim, page_tokens)
            for _ in range(config.n_layers)
        ]
        return cls([PagedLayerKV(pool) for pool in pools], pools)

    @classmethod
    def from_module_kvs(
        cls, config: ModelConfig, modules: list[ModuleKV],
        pools: list[PagePool] | None = None,
        page_tokens: int = PAGE_TOKENS,
    ) -> "PagedKVCache":
        """Splice module states into a fresh paged cache."""
        cache = cls.empty(config, pools, page_tokens)
        for kv in modules:
            for i, layer in enumerate(cache.layers):
                layer.append(kv.keys[i], kv.values[i], kv.positions)
        return cache

    def __len__(self) -> int:
        return len(self.layers[0]) if self.layers else 0

    def reserve(self, total: int) -> None:
        pass  # pages allocate lazily

    def fork(self) -> "PagedKVCache":
        return PagedKVCache([layer.fork() for layer in self.layers], self.pools)

    def materialize(self) -> None:
        """Pre-gather every layer's contiguous mirror.

        Called once when a shared base is built so that subsequent forks
        inherit the mirrors and the serving fast path never re-gathers —
        the first fork to decode extends the shared image in place.
        """
        for layer in self.layers:
            layer._ensure_mirror()

    def free(self) -> None:
        for layer in self.layers:
            layer.free()

    def physical_bytes(self) -> int:
        return sum(pool.physical_bytes() for pool in self.pools)

    def logical_bytes(self) -> int:
        return sum(layer.nbytes() for layer in self.layers)


def shared_batch_caches(
    config: ModelConfig, modules: list[ModuleKV], batch_size: int,
    page_tokens: int = PAGE_TOKENS,
) -> tuple[list[PagedKVCache], PagedKVCache]:
    """Per-request caches all sharing one physical copy of ``modules``.

    Returns (request caches, the base cache). Every request cache forks the
    base: module pages are shared (refcounted); each request's subsequent
    appends (uncached text, generated tokens) copy-on-write only the final
    partial page and then extend privately — exactly the §3.4 picture.
    """
    base = PagedKVCache.from_module_kvs(config, modules, page_tokens=page_tokens)
    return [base.fork() for _ in range(batch_size)], base
