"""Model architecture configurations.

Two families of configs live here:

- *Runnable* shapes (``tiny``, ``small``, ``base``) used by tests, examples,
  and measured benchmarks. They execute in the NumPy engine.
- *Paper* shapes (Llama2-7B/13B/70B, Falcon-1B/7B/40B/180B, MPT-7B/30B,
  CodeLlama-7B, BERT) whose tensor dimensions match the published models.
  These drive the analytical latency/memory results (Figures 3–5, Table 2);
  they are far too large to execute here but every closed-form cost is a
  pure function of the shapes below.

Table 2 of the paper reports KV bytes/token assuming full multi-head KV
(no GQA) at fp16; the catalog mirrors that accounting (``n_kv_heads ==
n_heads``) and treats grouped-query attention as the separate optimization
the paper defers to future work (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

ARCHITECTURES = ("llama", "falcon", "mpt", "gpt2")
POSITIONAL_KINDS = ("rope", "alibi", "learned")


@dataclass(frozen=True)
class ModelConfig:
    """Complete architectural description of a decoder-only transformer."""

    name: str
    architecture: str  # one of ARCHITECTURES
    vocab_size: int
    d_model: int
    n_layers: int
    n_heads: int
    n_kv_heads: int  # == n_heads for MHA; 1 for MQA; in between for GQA
    d_ff: int
    max_position: int
    positional: str  # one of POSITIONAL_KINDS
    norm: str  # "rmsnorm" | "layernorm"
    mlp: str  # "swiglu" | "gelu"
    parallel_block: bool  # Falcon computes attention and MLP in parallel
    attn_bias: bool = False
    rope_theta: float = 10000.0

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise ValueError(f"unknown architecture {self.architecture!r}")
        if self.positional not in POSITIONAL_KINDS:
            raise ValueError(f"unknown positional encoding {self.positional!r}")
        if self.d_model % self.n_heads:
            raise ValueError("d_model must be divisible by n_heads")
        if self.n_heads % self.n_kv_heads:
            raise ValueError("n_heads must be divisible by n_kv_heads")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def kv_dim(self) -> int:
        """Width of the key (or value) projection."""
        return self.n_kv_heads * self.head_dim

    def kv_bytes_per_token(self, bytes_per_element: int = 2) -> int:
        """Bytes to cache one token's K and V across all layers (Table 2).

        Defaults to fp16 (2 bytes/element) as in the paper's accounting.
        """
        return 2 * self.n_layers * self.kv_dim * bytes_per_element

    def with_vocab(self, vocab_size: int) -> "ModelConfig":
        """Copy with a different vocabulary (to match a trained tokenizer)."""
        return replace(self, vocab_size=vocab_size)


def _llama(name: str, *, d: int, layers: int, heads: int, ff: int,
           kv_heads: int | None = None, vocab: int = 32000,
           max_position: int = 4096) -> ModelConfig:
    return ModelConfig(
        name=name, architecture="llama", vocab_size=vocab, d_model=d,
        n_layers=layers, n_heads=heads, n_kv_heads=kv_heads or heads, d_ff=ff,
        max_position=max_position, positional="rope", norm="rmsnorm",
        mlp="swiglu", parallel_block=False,
    )


def _falcon(name: str, *, d: int, layers: int, heads: int,
            kv_heads: int | None = None, vocab: int = 65024,
            max_position: int = 4096) -> ModelConfig:
    return ModelConfig(
        name=name, architecture="falcon", vocab_size=vocab, d_model=d,
        n_layers=layers, n_heads=heads, n_kv_heads=kv_heads or heads,
        d_ff=4 * d, max_position=max_position, positional="rope",
        norm="layernorm", mlp="gelu", parallel_block=True,
    )


def _mpt(name: str, *, d: int, layers: int, heads: int, vocab: int = 50432,
         max_position: int = 4096) -> ModelConfig:
    return ModelConfig(
        name=name, architecture="mpt", vocab_size=vocab, d_model=d,
        n_layers=layers, n_heads=heads, n_kv_heads=heads, d_ff=4 * d,
        max_position=max_position, positional="alibi", norm="layernorm",
        mlp="gelu", parallel_block=False,
    )


def _gpt2(name: str, *, d: int, layers: int, heads: int, vocab: int = 50257,
          max_position: int = 2048) -> ModelConfig:
    return ModelConfig(
        name=name, architecture="gpt2", vocab_size=vocab, d_model=d,
        n_layers=layers, n_heads=heads, n_kv_heads=heads, d_ff=4 * d,
        max_position=max_position, positional="learned", norm="layernorm",
        mlp="gelu", parallel_block=False, attn_bias=True,
    )


# Runnable shapes -------------------------------------------------------------

def tiny_config(architecture: str = "llama", vocab_size: int = 512,
                max_position: int = 4096) -> ModelConfig:
    """Smallest functional shape; the whole test suite runs on these."""
    builders = {"llama": _llama, "falcon": _falcon, "mpt": _mpt, "gpt2": _gpt2}
    kwargs = dict(d=64, layers=2, heads=4, vocab=vocab_size,
                  max_position=max_position)
    if architecture == "llama":
        kwargs["ff"] = 128
    return builders[architecture](f"{architecture}-tiny", **kwargs)


def small_config(architecture: str = "llama", vocab_size: int = 2048,
                 max_position: int = 8192) -> ModelConfig:
    """Measured-benchmark shape: real NumPy wall-clock numbers come from it."""
    builders = {"llama": _llama, "falcon": _falcon, "mpt": _mpt, "gpt2": _gpt2}
    kwargs = dict(d=256, layers=4, heads=8, vocab=vocab_size,
                  max_position=max_position)
    if architecture == "llama":
        kwargs["ff"] = 512
    return builders[architecture](f"{architecture}-small", **kwargs)


# Paper shapes ----------------------------------------------------------------

PAPER_MODELS: dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in [
        ModelConfig(
            name="bert-base", architecture="gpt2", vocab_size=30522,
            d_model=768, n_layers=12, n_heads=12, n_kv_heads=12, d_ff=3072,
            max_position=512, positional="learned", norm="layernorm",
            mlp="gelu", parallel_block=False, attn_bias=True,
        ),
        _falcon("falcon-1b", d=2048, layers=24, heads=32),
        _llama("llama2-7b", d=4096, layers=32, heads=32, ff=11008),
        _llama("codellama-7b", d=4096, layers=32, heads=32, ff=11008,
               vocab=32016, max_position=16384),
        _llama("llama2-13b", d=5120, layers=40, heads=40, ff=13824),
        _mpt("mpt-7b", d=4096, layers=32, heads=32),
        _mpt("mpt-30b", d=7168, layers=48, heads=64),
        _falcon("falcon-7b", d=4544, layers=32, heads=71),
        _falcon("falcon-40b", d=8192, layers=60, heads=128),
        _llama("llama2-70b", d=8192, layers=80, heads=64, ff=28672),
        _falcon("falcon-180b", d=14848, layers=80, heads=232),
    ]
}


# Trained stand-ins ------------------------------------------------------------
#
# Table 1 evaluates pretrained Llama2-7B/13B, MPT-7B and Falcon-7B. The
# offline substitutes are these mini shapes, trained from scratch on the
# synthetic recall tasks (repro.train); "13b" is a larger shape than "7b"
# so the size ordering carries over. d_model=128 matters: the ~880-token
# vocabulary needs enough embedding width for clean induction matching.

TRAINED_MODELS: dict[str, "ModelConfig"] = {}


def _register_trained(cfg: ModelConfig) -> ModelConfig:
    TRAINED_MODELS[cfg.name] = cfg
    return cfg


_register_trained(_llama("llama2-7b-mini", d=128, layers=2, heads=8, ff=256, vocab=1024))
_register_trained(_llama("llama2-13b-mini", d=160, layers=2, heads=8, ff=320, vocab=1024))
_register_trained(_mpt("mpt-7b-mini", d=128, layers=2, heads=8, vocab=1024))
_register_trained(_falcon("falcon-7b-mini", d=128, layers=2, heads=8, vocab=1024))


def trained_config(name: str, vocab_size: int | None = None) -> ModelConfig:
    """Mini shape used for the trained accuracy models (Table 1)."""
    try:
        cfg = TRAINED_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown trained model {name!r}; known: {sorted(TRAINED_MODELS)}"
        ) from None
    return cfg.with_vocab(vocab_size) if vocab_size else cfg


def paper_config(name: str) -> ModelConfig:
    """Look up a paper-shape config by name (e.g. ``"llama2-7b"``)."""
    try:
        return PAPER_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown paper model {name!r}; known: {sorted(PAPER_MODELS)}"
        ) from None
