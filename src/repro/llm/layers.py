"""Primitive neural-network layers as pure functions over NumPy arrays.

The engine is functional: parameters are plain ``np.ndarray`` values held in
dicts, and every layer is a stateless function. This keeps the hot path
vectorized (guides: avoid Python loops over elements) and makes the
bit-exactness tests trivial — identical inputs produce identical outputs.

All computation is float32. fp16 appears only in *storage* accounting
(Table 2); NumPy fp16 arithmetic would be both slow and needlessly lossy.
"""

from __future__ import annotations

import numpy as np

DTYPE = np.float32


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """``x @ weight.T (+ bias)`` with weight stored (out_features, in_features)."""
    out = x @ weight.T
    if bias is not None:
        out += bias
    return out


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square normalization (Llama family)."""
    variance = np.mean(np.square(x), axis=-1, keepdims=True)
    return (x / np.sqrt(variance + eps)) * weight


def layer_norm(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Standard LayerNorm (Falcon / MPT / GPT-2 families)."""
    mean = np.mean(x, axis=-1, keepdims=True)
    variance = np.mean(np.square(x - mean), axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(variance + eps) * weight + bias


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU/swish activation: ``x * sigmoid(x)``."""
    return x / (1.0 + np.exp(-x))


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU (tanh approximation, matching common inference kernels)."""
    c = np.sqrt(2.0 / np.pi).astype(DTYPE)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def swiglu_mlp(
    x: np.ndarray,
    gate_weight: np.ndarray,
    up_weight: np.ndarray,
    down_weight: np.ndarray,
) -> np.ndarray:
    """Llama-style gated MLP: ``down(silu(gate(x)) * up(x))``."""
    return linear(silu(linear(x, gate_weight)) * linear(x, up_weight), down_weight)


def gelu_mlp(
    x: np.ndarray,
    up_weight: np.ndarray,
    up_bias: np.ndarray | None,
    down_weight: np.ndarray,
    down_bias: np.ndarray | None,
) -> np.ndarray:
    """Classic two-matrix MLP with GELU (Falcon / MPT / GPT-2)."""
    return linear(gelu(linear(x, up_weight, up_bias)), down_weight, down_bias)


def embed(token_ids: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Token-embedding lookup; ``table`` is (vocab, d_model)."""
    return table[token_ids]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted
