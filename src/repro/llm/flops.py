"""Closed-form FLOP and byte counts for transformer inference.

These drive the analytical device model (:mod:`repro.hw.latency`) used for
the paper-shape results in Figures 3–5 and §5.4. Counting conventions:

- One multiply-accumulate = 2 FLOPs.
- A matmul (m, k) @ (k, n) costs ``2 * m * k * n``.
- Norms, activations, and softmax are counted at a few FLOPs/element; they
  are a rounding error next to the matmuls but keep the totals honest.

The paper quotes attention prefill as ``6 n d^2 + 4 n^2 d`` (Q/K/V
projections plus score/value matmuls, MHA); :func:`attention_flops`
generalizes that to GQA and includes the output projection, and
:func:`paper_attention_flops` reproduces the quoted formula exactly.
"""

from __future__ import annotations

from repro.llm.config import ModelConfig


def paper_attention_flops(n: int, d: int) -> int:
    """The paper's §2.2 formula for one layer's attention prefill."""
    return 6 * n * d * d + 4 * n * n * d


def attention_flops(config: ModelConfig, n_new: int, n_total: int) -> int:
    """One layer's attention cost for ``n_new`` query tokens over a context
    of ``n_total`` keys (``n_total == n_new`` for a from-scratch prefill).

    Priced from the explicit GQA head grouping: Q projects to
    ``n_heads * head_dim`` but K/V project only to
    ``n_kv_heads * head_dim``, and the score/context matmuls run per
    *query* head against the group's shared KV head — GQA shrinks the
    K/V projections (and the cached bytes, see :func:`kv_bytes`), while
    every query head still prices its full ``n_total``-key dot products,
    so the quadratic terms match MHA at equal ``n_heads``.
    """
    heads, kv_heads, hd = config.n_heads, config.n_kv_heads, config.head_dim
    d = config.d_model
    q_proj = 2 * n_new * d * (heads * hd)
    kv_proj = 2 * 2 * n_new * d * (kv_heads * hd)  # K and V
    scores = 2 * heads * n_new * n_total * hd  # per query head: Q @ K_group^T
    context = 2 * heads * n_new * n_total * hd  # softmax(scores) @ V_group
    out = 2 * n_new * (heads * hd) * d
    return q_proj + kv_proj + scores + context + out


def mlp_flops(config: ModelConfig, n_new: int) -> int:
    """One layer's MLP cost; SwiGLU has three matrices, GELU has two."""
    matrices = 3 if config.mlp == "swiglu" else 2
    return matrices * 2 * n_new * config.d_model * config.d_ff


def layer_flops(config: ModelConfig, n_new: int, n_total: int) -> int:
    return attention_flops(config, n_new, n_total) + mlp_flops(config, n_new)


def prefill_flops(config: ModelConfig, n: int) -> int:
    """Full-model prefill of an ``n``-token prompt (the KV-cache baseline's
    TTFT compute). The LM head is counted for the final token only, as in
    inference engines that skip logits for non-final prompt positions."""
    return (
        config.n_layers * layer_flops(config, n, n)
        + lm_head_flops(config)
    )


def cached_prefill_flops(config: ModelConfig, n_uncached: int, n_total: int) -> int:
    """Prompt Cache's TTFT compute: only ``n_uncached`` suffix/argument
    tokens are computed, attending to the full ``n_total`` context of
    spliced-in module states (paper §3.4)."""
    return (
        config.n_layers * layer_flops(config, n_uncached, n_total)
        + lm_head_flops(config)
    )


def decode_step_flops(config: ModelConfig, context_len: int) -> int:
    """One generated token attending to ``context_len`` cached tokens."""
    return config.n_layers * layer_flops(config, 1, context_len) + lm_head_flops(config)


def lm_head_flops(config: ModelConfig) -> int:
    return 2 * config.d_model * config.vocab_size


# -- two-phase (ChunkAttention) decode accounting ------------------------------
#
# Decode attention on real hardware is memory-bandwidth bound: the cost
# that matters is KV tokens *streamed from memory*, not multiply-adds
# (each sequence's query is distinct, so the MAC count of the score and
# context products is the same with or without sharing). These helpers
# price the bandwidth-equivalent "effective FLOPs" of a batched decode
# step — the score + context work attached to each KV token the kernel
# actually streams. The two-phase path streams a shared chunk once per
# *group* instead of once per *sequence*, which is exactly the quantity
# ChunkAttention (arxiv 2402.15220) optimizes and what
# bench_abl_chunk_attention.py reports as a function of share factor.


def decode_attention_stream_flops(
    config: ModelConfig, kv_tokens: int, queries: int = 1
) -> int:
    """Effective attention cost of streaming ``kv_tokens`` cached keys
    and values for ``queries`` single-token decoders: one score dot and
    one context accumulation per query head per token."""
    per_token = 2 * config.n_heads * config.head_dim  # Q . K per query head
    per_token += 2 * config.n_heads * config.head_dim  # weights @ V
    return per_token * kv_tokens * queries


def two_phase_merge_flops(config: ModelConfig, queries: int = 1) -> int:
    """Online-softmax merge overhead per merged sequence: rescaling the
    exp-sums and the two partial context vectors (a few elementwise
    passes over ``head_dim`` per head — noise next to the streams, but
    counted so savings never read as free)."""
    return 8 * config.n_heads * config.head_dim * queries


def shared_decode_attention_flops(
    config: ModelConfig, shared_len: int, private_lens: list[int]
) -> int:
    """Effective attention cost of one two-phase batched decode step for
    a group of ``len(private_lens)`` sequences sharing ``shared_len`` KV
    tokens: the shared chunk is streamed once for the whole group, each
    private suffix once per owner, plus the per-sequence merge."""
    group = len(private_lens)
    shared = decode_attention_stream_flops(config, shared_len)
    private = sum(
        decode_attention_stream_flops(config, n) for n in private_lens
    )
    return shared + private + group * two_phase_merge_flops(config)


def single_pass_decode_attention_flops(
    config: ModelConfig, shared_len: int, private_lens: list[int]
) -> int:
    """The same step without sharing: every sequence streams the full
    ``shared_len + private`` context itself."""
    return sum(
        decode_attention_stream_flops(config, shared_len + n)
        for n in private_lens
    )


def shared_decode_flops_saved(
    config: ModelConfig, shared_len: int, group_size: int
) -> int:
    """Effective attention FLOPs one two-phase group saves per decode
    step versus the single-pass path, net of merge overhead — the
    ``decode_flops_saved_total`` gauge's per-iteration increment.
    Private-suffix streams cancel between the two paths, so only the
    shared chunk's duplication factor and the merge enter."""
    saved = (group_size - 1) * decode_attention_stream_flops(config, shared_len)
    saved -= group_size * two_phase_merge_flops(config)
    return max(saved, 0)


# -- bytes --------------------------------------------------------------------


def kv_bytes(config: ModelConfig, n_tokens: int, bytes_per_element: int = 2) -> int:
    """Bytes of cached K/V for ``n_tokens`` across all layers (Table 2)."""
    return n_tokens * config.kv_bytes_per_token(bytes_per_element)


def weight_bytes(config: ModelConfig, bytes_per_element: int = 2) -> int:
    """Total parameter bytes — the floor of memory traffic per forward pass
    (every weight is read at least once), which dominates decode latency."""
    d, ff, kv = config.d_model, config.d_ff, config.kv_dim
    per_layer = (
        d * (d + 2 * kv)  # q, k, v projections
        + d * d  # output projection
        + (3 if config.mlp == "swiglu" else 2) * d * ff
        + 2 * d  # norms (approximate: weight + bias)
    )
    embeddings = config.vocab_size * d
    if config.positional == "learned":
        embeddings += config.max_position * d
    return (config.n_layers * per_layer + embeddings + d) * bytes_per_element


def prefill_activation_bytes(
    config: ModelConfig,
    n_new: int,
    bytes_per_element: int = 2,
    n_total: int | None = None,
    attention_passes: float = 2.0,
) -> int:
    """Activation traffic for prefilling ``n_new`` tokens over ``n_total``
    context: residual stream reads/writes plus the attention score matrix,
    which crosses memory ``attention_passes`` times per layer (mask, bias,
    softmax) — the dominant term for unfused kernels."""
    if n_total is None:
        n_total = n_new
    d = config.d_model
    residual = 4 * n_new * d
    scores = attention_passes * config.n_heads * n_new * n_total
    return int(config.n_layers * (residual + scores) * bytes_per_element)
