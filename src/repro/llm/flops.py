"""Closed-form FLOP and byte counts for transformer inference.

These drive the analytical device model (:mod:`repro.hw.latency`) used for
the paper-shape results in Figures 3–5 and §5.4. Counting conventions:

- One multiply-accumulate = 2 FLOPs.
- A matmul (m, k) @ (k, n) costs ``2 * m * k * n``.
- Norms, activations, and softmax are counted at a few FLOPs/element; they
  are a rounding error next to the matmuls but keep the totals honest.

The paper quotes attention prefill as ``6 n d^2 + 4 n^2 d`` (Q/K/V
projections plus score/value matmuls, MHA); :func:`attention_flops`
generalizes that to GQA and includes the output projection, and
:func:`paper_attention_flops` reproduces the quoted formula exactly.
"""

from __future__ import annotations

from repro.llm.config import ModelConfig


def paper_attention_flops(n: int, d: int) -> int:
    """The paper's §2.2 formula for one layer's attention prefill."""
    return 6 * n * d * d + 4 * n * n * d


def attention_flops(config: ModelConfig, n_new: int, n_total: int) -> int:
    """One layer's attention cost for ``n_new`` query tokens over a context
    of ``n_total`` keys (``n_total == n_new`` for a from-scratch prefill)."""
    d = config.d_model
    kv = config.kv_dim
    projections = 2 * n_new * d * (d + 2 * kv)  # Q, K, V
    scores = 2 * n_new * n_total * d  # Q @ K^T across all heads
    context = 2 * n_new * n_total * d  # softmax(scores) @ V
    out = 2 * n_new * d * d
    return projections + scores + context + out


def mlp_flops(config: ModelConfig, n_new: int) -> int:
    """One layer's MLP cost; SwiGLU has three matrices, GELU has two."""
    matrices = 3 if config.mlp == "swiglu" else 2
    return matrices * 2 * n_new * config.d_model * config.d_ff


def layer_flops(config: ModelConfig, n_new: int, n_total: int) -> int:
    return attention_flops(config, n_new, n_total) + mlp_flops(config, n_new)


def prefill_flops(config: ModelConfig, n: int) -> int:
    """Full-model prefill of an ``n``-token prompt (the KV-cache baseline's
    TTFT compute). The LM head is counted for the final token only, as in
    inference engines that skip logits for non-final prompt positions."""
    return (
        config.n_layers * layer_flops(config, n, n)
        + lm_head_flops(config)
    )


def cached_prefill_flops(config: ModelConfig, n_uncached: int, n_total: int) -> int:
    """Prompt Cache's TTFT compute: only ``n_uncached`` suffix/argument
    tokens are computed, attending to the full ``n_total`` context of
    spliced-in module states (paper §3.4)."""
    return (
        config.n_layers * layer_flops(config, n_uncached, n_total)
        + lm_head_flops(config)
    )


def decode_step_flops(config: ModelConfig, context_len: int) -> int:
    """One generated token attending to ``context_len`` cached tokens."""
    return config.n_layers * layer_flops(config, 1, context_len) + lm_head_flops(config)


def lm_head_flops(config: ModelConfig) -> int:
    return 2 * config.d_model * config.vocab_size


# -- bytes --------------------------------------------------------------------


def kv_bytes(config: ModelConfig, n_tokens: int, bytes_per_element: int = 2) -> int:
    """Bytes of cached K/V for ``n_tokens`` across all layers (Table 2)."""
    return n_tokens * config.kv_bytes_per_token(bytes_per_element)


def weight_bytes(config: ModelConfig, bytes_per_element: int = 2) -> int:
    """Total parameter bytes — the floor of memory traffic per forward pass
    (every weight is read at least once), which dominates decode latency."""
    d, ff, kv = config.d_model, config.d_ff, config.kv_dim
    per_layer = (
        d * (d + 2 * kv)  # q, k, v projections
        + d * d  # output projection
        + (3 if config.mlp == "swiglu" else 2) * d * ff
        + 2 * d  # norms (approximate: weight + bias)
    )
    embeddings = config.vocab_size * d
    if config.positional == "learned":
        embeddings += config.max_position * d
    return (config.n_layers * per_layer + embeddings + d) * bytes_per_element


def prefill_activation_bytes(
    config: ModelConfig,
    n_new: int,
    bytes_per_element: int = 2,
    n_total: int | None = None,
    attention_passes: float = 2.0,
) -> int:
    """Activation traffic for prefilling ``n_new`` tokens over ``n_total``
    context: residual stream reads/writes plus the attention score matrix,
    which crosses memory ``attention_passes`` times per layer (mask, bias,
    softmax) — the dominant term for unfused kernels."""
    if n_total is None:
        n_total = n_new
    d = config.d_model
    residual = 4 * n_new * d
    scores = attention_passes * config.n_heads * n_new * n_total
    return int(config.n_layers * (residual + scores) * bytes_per_element)
