"""Decoder-only transformer models over NumPy parameters.

One generic :class:`TransformerModel` covers the paper's three evaluated
architecture families (plus GPT-2-style learned positions), differing only
in the knobs carried by :class:`~repro.llm.config.ModelConfig`:

============  ========  ===========  =========  ==============
family        norm      positional   MLP        block layout
============  ========  ===========  =========  ==============
llama         RMSNorm   RoPE         SwiGLU     sequential
falcon        LayerNorm RoPE         GELU       parallel
mpt           LayerNorm ALiBi        GELU       sequential
gpt2          LayerNorm learned      GELU       sequential
============  ========  ===========  =========  ==============

The forward pass is single-sequence (no batch axis): Prompt Cache is a
prefill-stage transformation and all paper results are per-request TTFT.
"""

from __future__ import annotations

import numpy as np

from repro.llm.attention import decode_attention_batch, self_attention
from repro.llm.config import ModelConfig
from repro.llm.kv import KVCache
from repro.llm.layers import (
    embed,
    gelu_mlp,
    layer_norm,
    linear,
    rms_norm,
    swiglu_mlp,
)
from repro.llm.positional import (
    AlibiBias,
    LearnedPositionalEmbedding,
    RotaryEmbedding,
)


class TransformerModel:
    """A config + parameter dict, exposing a KV-cache forward pass."""

    def __init__(self, config: ModelConfig, params: dict[str, np.ndarray]) -> None:
        self.config = config
        self.params = params
        self.rope = (
            RotaryEmbedding(config.head_dim, config.max_position, config.rope_theta)
            if config.positional == "rope"
            else None
        )
        self.alibi = (
            AlibiBias(config.n_heads, config.max_position)
            if config.positional == "alibi"
            else None
        )
        self.learned_pos = (
            LearnedPositionalEmbedding(params["pos.weight"])
            if config.positional == "learned"
            else None
        )

    # -- parameter access ----------------------------------------------------

    def _p(self, name: str) -> np.ndarray:
        return self.params[name]

    def _maybe(self, name: str) -> np.ndarray | None:
        return self.params.get(name)

    def _norm(self, x: np.ndarray, prefix: str) -> np.ndarray:
        if self.config.norm == "rmsnorm":
            return rms_norm(x, self._p(f"{prefix}.weight"))
        return layer_norm(x, self._p(f"{prefix}.weight"), self._p(f"{prefix}.bias"))

    def _mlp(self, x: np.ndarray, i: int) -> np.ndarray:
        if self.config.mlp == "swiglu":
            return swiglu_mlp(
                x,
                self._p(f"layers.{i}.mlp.gate"),
                self._p(f"layers.{i}.mlp.up"),
                self._p(f"layers.{i}.mlp.down"),
            )
        return gelu_mlp(
            x,
            self._p(f"layers.{i}.mlp.up"),
            self._maybe(f"layers.{i}.mlp.up_bias"),
            self._p(f"layers.{i}.mlp.down"),
            self._maybe(f"layers.{i}.mlp.down_bias"),
        )

    def _attention(
        self,
        x: np.ndarray,
        i: int,
        position_ids: np.ndarray,
        cache: KVCache,
        trace: list | None = None,
    ) -> np.ndarray:
        cfg = self.config
        return self_attention(
            x,
            wq=self._p(f"layers.{i}.attn.wq"),
            wk=self._p(f"layers.{i}.attn.wk"),
            wv=self._p(f"layers.{i}.attn.wv"),
            wo=self._p(f"layers.{i}.attn.wo"),
            bq=self._maybe(f"layers.{i}.attn.bq"),
            bk=self._maybe(f"layers.{i}.attn.bk"),
            bv=self._maybe(f"layers.{i}.attn.bv"),
            bo=self._maybe(f"layers.{i}.attn.bo"),
            n_heads=cfg.n_heads,
            n_kv_heads=cfg.n_kv_heads,
            position_ids=position_ids,
            layer_kv=cache.layers[i],
            rope=self.rope,
            alibi=self.alibi,
            trace=trace,
        )

    # -- forward ---------------------------------------------------------------

    def forward(
        self,
        token_ids: np.ndarray,
        position_ids: np.ndarray,
        cache: KVCache,
        trace: list | None = None,
    ) -> np.ndarray:
        """Run ``token_ids`` (T,) at ``position_ids`` (T,), appending K/V to
        ``cache``. Returns logits of shape (T, vocab).

        ``cache`` may already hold states — from an earlier chunk of this
        prompt, previous decode steps, or Prompt Cache module splicing; the
        new tokens attend to everything whose position precedes theirs.

        ``trace``, when a list, collects per-layer post-softmax attention
        weights (see :mod:`repro.llm.introspect`).
        """
        token_ids = np.asarray(token_ids)
        position_ids = np.asarray(position_ids)
        if token_ids.shape != position_ids.shape:
            raise ValueError("token_ids and position_ids must have equal shape")

        hidden = embed(token_ids, self._p("embed.weight"))
        if self.learned_pos is not None:
            hidden = self.learned_pos.apply(hidden, position_ids)

        for i in range(self.config.n_layers):
            normed = self._norm(hidden, f"layers.{i}.attn_norm")
            attn_out = self._attention(normed, i, position_ids, cache, trace)
            if self.config.parallel_block:
                # Falcon layout: attention and MLP both read the same
                # normalized input and are summed into the residual.
                hidden = hidden + attn_out + self._mlp(normed, i)
            else:
                hidden = hidden + attn_out
                hidden = hidden + self._mlp(
                    self._norm(hidden, f"layers.{i}.mlp_norm"), i
                )

        hidden = self._norm(hidden, "final_norm")
        # Weight-tied LM head: logits share the embedding matrix.
        return hidden @ self._p("embed.weight").T

    def forward_decode_batch(
        self,
        token_ids: np.ndarray,
        position_ids: np.ndarray,
        caches: list[KVCache],
        shared_groups: list[tuple[list[int], int]] | None = None,
    ) -> np.ndarray:
        """One decode step for B independent sequences at once.

        ``token_ids``/``position_ids`` are (B,) — one freshly sampled
        token per sequence — and ``caches`` the B per-sequence KV caches
        (plain or paged), each of which is appended to exactly as a
        single-sequence :meth:`forward` call would. Returns logits of
        shape (B, vocab).

        ``shared_groups`` opts grouped sequences into the two-phase
        shared-prefix attention path (see
        :func:`repro.llm.attention.chunk_phase`): each ``(members,
        shared_len)`` entry names cache indices forked from one spliced
        base whose first ``shared_len`` tokens are a common KV prefix,
        computed once per group per layer instead of once per sequence.

        The hidden state is kept as (B, 1, d_model) throughout: norms
        and MLPs are elementwise/last-axis ops, and every projection is
        a stacked 3-D matmul whose per-slice GEMMs match the (1, d)
        single-sequence products bit for bit — so greedy decode through
        this entry point is byte-identical to B sequential forwards
        while amortizing Python and NumPy dispatch overhead across the
        batch (the iteration-level scheduler's hot loop).
        """
        n = len(caches)
        token_ids = np.asarray(token_ids).reshape(n, 1)
        position_ids = np.asarray(position_ids).reshape(n, 1)

        hidden = embed(token_ids, self._p("embed.weight"))
        if self.learned_pos is not None:
            hidden = self.learned_pos.apply(hidden, position_ids)

        cfg = self.config
        for i in range(cfg.n_layers):
            normed = self._norm(hidden, f"layers.{i}.attn_norm")
            attn_out = decode_attention_batch(
                normed,
                wq=self._p(f"layers.{i}.attn.wq"),
                wk=self._p(f"layers.{i}.attn.wk"),
                wv=self._p(f"layers.{i}.attn.wv"),
                wo=self._p(f"layers.{i}.attn.wo"),
                bq=self._maybe(f"layers.{i}.attn.bq"),
                bk=self._maybe(f"layers.{i}.attn.bk"),
                bv=self._maybe(f"layers.{i}.attn.bv"),
                bo=self._maybe(f"layers.{i}.attn.bo"),
                n_heads=cfg.n_heads,
                n_kv_heads=cfg.n_kv_heads,
                position_ids=position_ids,
                layer_kvs=[cache.layers[i] for cache in caches],
                rope=self.rope,
                alibi=self.alibi,
                shared_groups=shared_groups,
            )
            if cfg.parallel_block:
                hidden = hidden + attn_out + self._mlp(normed, i)
            else:
                hidden = hidden + attn_out
                hidden = hidden + self._mlp(
                    self._norm(hidden, f"layers.{i}.mlp_norm"), i
                )

        hidden = self._norm(hidden, "final_norm")
        return (hidden @ self._p("embed.weight").T)[:, 0, :]

    def new_cache(self, capacity: int = 64) -> KVCache:
        return KVCache.empty(self.config, capacity=capacity)


def build_model(config: ModelConfig, seed: int = 0) -> TransformerModel:
    """Construct a model with deterministic seeded initialization."""
    from repro.llm.weights import init_params

    return TransformerModel(config, init_params(config, seed=seed))
