"""Causal self-attention with explicit position IDs and KV-cache reuse.

The causal mask is derived from position IDs, not array indices:
``query may attend to key  iff  key_position <= query_position``.
With contiguous IDs this is the ordinary lower-triangular mask; with
Prompt Cache's gapped IDs it is exactly the semantics the paper relies on —
a module encoded alone attends only within itself (the paper's implicit
per-module mask, §3.3), and uncached suffix tokens attend to every cached
module that the schema placed before them.
"""

from __future__ import annotations

import numpy as np

from repro.llm.layers import DTYPE, linear, softmax
from repro.llm.kv import LayerKV
from repro.llm.positional.alibi import AlibiBias
from repro.llm.positional.rope import RotaryEmbedding

_NEG_INF = np.float32(-1e9)


def split_heads(x: np.ndarray, n_heads: int) -> np.ndarray:
    """(T, n_heads * head_dim) -> (n_heads, T, head_dim)."""
    t, width = x.shape
    return x.reshape(t, n_heads, width // n_heads).transpose(1, 0, 2)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """(n_heads, T, head_dim) -> (T, n_heads * head_dim)."""
    heads, t, head_dim = x.shape
    return x.transpose(1, 0, 2).reshape(t, heads * head_dim)


def repeat_kv(x: np.ndarray, n_rep: int) -> np.ndarray:
    """Expand KV heads for grouped-query attention (no copy when n_rep==1)."""
    if n_rep == 1:
        return x
    return np.repeat(x, n_rep, axis=0)


def causal_position_mask(
    q_positions: np.ndarray, k_positions: np.ndarray
) -> np.ndarray:
    """Boolean (Tq, Tk) mask, True where attention is allowed."""
    return np.asarray(k_positions)[None, :] <= np.asarray(q_positions)[:, None]


def attention_scores(
    q: np.ndarray,
    k: np.ndarray,
    q_positions: np.ndarray,
    k_positions: np.ndarray,
    alibi: AlibiBias | None = None,
) -> np.ndarray:
    """Masked, scaled scores (n_heads, Tq, Tk) before softmax."""
    head_dim = q.shape[-1]
    scores = q @ k.transpose(0, 2, 1) / np.sqrt(np.float32(head_dim))
    if alibi is not None:
        scores = scores + alibi.bias(q_positions, k_positions)
    allowed = causal_position_mask(q_positions, k_positions)
    return np.where(allowed[None, :, :], scores, _NEG_INF)


def _mask_free(layer_kv, k_positions: np.ndarray, position) -> bool:
    """True when a single query at ``position`` sits at or after every
    cached key, so the causal mask would be an elementwise identity.
    Uses the cache's O(1) ``max_position`` when it tracks one; falls
    back to scanning the positions array for duck-typed caches."""
    max_position = getattr(layer_kv, "max_position", None)
    if max_position is not None:
        return max_position <= position
    return bool((k_positions <= position).all())


def grouped_scores(q: np.ndarray, k: np.ndarray, n_rep: int) -> np.ndarray:
    """Scaled scores (n_heads, Tq, Tk) without expanding KV heads.

    For GQA (``n_rep > 1``) the query heads are folded into
    ``(n_kv_heads, n_rep, Tq, head_dim)`` and matmul broadcasts the
    un-expanded keys across the group axis. Each 2-D GEMM slice is the
    same ``q_h @ k_g.T`` product the :func:`repeat_kv` path computes, so
    the result is bit-identical — minus the ``n_rep×`` key/value copy.
    """
    head_dim = q.shape[-1]
    scale = np.sqrt(np.float32(head_dim))
    if n_rep == 1:
        scores = q @ k.transpose(0, 2, 1)
        scores /= scale
        return scores
    n_heads, tq, _ = q.shape
    n_kv = k.shape[0]
    folded = q.reshape(n_kv, n_rep, tq, head_dim)
    scores = folded @ k[:, None, :, :].transpose(0, 1, 3, 2)
    scores /= scale
    return scores.reshape(n_heads, tq, -1)


def grouped_context(weights: np.ndarray, v: np.ndarray, n_rep: int) -> np.ndarray:
    """``weights @ values`` (n_heads, Tq, head_dim) without expanding values."""
    if n_rep == 1:
        return weights @ v
    n_heads, tq, tk = weights.shape
    n_kv = v.shape[0]
    context = weights.reshape(n_kv, n_rep, tq, tk) @ v[:, None, :, :]
    return context.reshape(n_heads, tq, -1)


def decode_attention_batch(
    x: np.ndarray,
    *,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    wo: np.ndarray,
    bq: np.ndarray | None,
    bk: np.ndarray | None,
    bv: np.ndarray | None,
    bo: np.ndarray | None,
    n_heads: int,
    n_kv_heads: int,
    position_ids: np.ndarray,
    layer_kvs: list[LayerKV],
    rope: RotaryEmbedding | None = None,
    alibi: AlibiBias | None = None,
) -> np.ndarray:
    """One attention layer for a batched single-token decode step.

    ``x`` is (B, 1, d_model) — one freshly sampled token per in-flight
    sequence — and ``layer_kvs`` holds the B per-sequence caches.
    ``position_ids`` is (B, 1). Returns (B, 1, d_model).

    The q/k/v/output projections run as one stacked 3-D matmul each:
    NumPy evaluates a ``(B, 1, d) @ (d, n)`` product slice by slice, so
    every row is the exact GEMM the single-sequence path computes and
    the result is bit-identical to B separate :func:`self_attention`
    calls. (A flattened ``(B, d) @ (d, n)`` GEMM would *not* be — BLAS
    blocks the reduction differently at M > 1.) Attention itself runs
    per sequence because each sequence attends over its own cache —
    mirroring the single path's decode fast-path exactly, including the
    mask skip when the query position is at or after every cached key.
    """
    q = linear(x, wq, bq)
    k = linear(x, wk, bk)
    v = linear(x, wv, bv)
    n_rep = n_heads // n_kv_heads

    # Cross-sequence head split + rotation in one pass each: reshape/
    # transpose are exact and rotation is elementwise, so qh[b] is
    # bit-identical to split_heads(q[b]) fed through rope.apply — B
    # Python round-trips per layer collapse into two array ops.
    batch, t, _ = x.shape
    qh = q.reshape(batch, t, n_heads, -1).transpose(0, 2, 1, 3)
    kh = k.reshape(batch, t, n_kv_heads, -1).transpose(0, 2, 1, 3)
    vh = v.reshape(batch, t, n_kv_heads, -1).transpose(0, 2, 1, 3)
    if rope is not None:
        qh = rope.apply_stacked(qh, position_ids)
        kh = rope.apply_stacked(kh, position_ids)

    contexts = []
    for b, layer_kv in enumerate(layer_kvs):
        pos = position_ids[b]
        qb, kb, vb = qh[b], kh[b], vh[b]
        layer_kv.append(kb, vb, pos)
        k_positions = layer_kv.positions
        scores = grouped_scores(qb, layer_kv.keys, n_rep)
        if alibi is not None:
            scores = scores + alibi.bias(pos, k_positions)
        if not _mask_free(layer_kv, k_positions, pos[0]):
            allowed = causal_position_mask(pos, k_positions)
            scores = np.where(allowed[None, :, :], scores, _NEG_INF)
        if scores.dtype != DTYPE:
            scores = scores.astype(DTYPE)
        weights = softmax(scores)
        contexts.append(merge_heads(grouped_context(weights, layer_kv.values, n_rep)))

    return linear(np.stack(contexts), wo, bo)


def self_attention(
    x: np.ndarray,
    *,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    wo: np.ndarray,
    bq: np.ndarray | None,
    bk: np.ndarray | None,
    bv: np.ndarray | None,
    bo: np.ndarray | None,
    n_heads: int,
    n_kv_heads: int,
    position_ids: np.ndarray,
    layer_kv: LayerKV,
    rope: RotaryEmbedding | None = None,
    alibi: AlibiBias | None = None,
    trace: list | None = None,
) -> np.ndarray:
    """One attention layer over ``x`` (T, d_model), updating ``layer_kv``.

    New tokens' K/V are appended to ``layer_kv`` (with their position IDs)
    and attention runs over *all* cached entries — whether they came from an
    earlier forward pass, a decode step, or a spliced-in prompt module.

    When ``trace`` is a list, the post-softmax attention weights
    ``(n_heads, Tq, Tk)`` and the key position IDs are appended to it —
    the introspection hook used by :func:`repro.llm.introspect.attention_trace`.
    """
    q = split_heads(linear(x, wq, bq), n_heads)
    k = split_heads(linear(x, wk, bk), n_kv_heads)
    v = split_heads(linear(x, wv, bv), n_kv_heads)

    if rope is not None:
        q = rope.apply(q, position_ids)
        k = rope.apply(k, position_ids)

    layer_kv.append(k, v, position_ids)
    n_rep = n_heads // n_kv_heads
    k_positions = layer_kv.positions

    scores = grouped_scores(q, layer_kv.keys, n_rep)
    if alibi is not None:
        scores = scores + alibi.bias(position_ids, k_positions)
    if q.shape[1] == 1 and _mask_free(layer_kv, k_positions, position_ids[0]):
        # Decode fast path: a single query token whose position is at or
        # after every cached key — the causal mask is all-True, so the
        # np.where would be an elementwise identity. Skip building it.
        pass
    else:
        allowed = causal_position_mask(position_ids, k_positions)
        scores = np.where(allowed[None, :, :], scores, _NEG_INF)
    if scores.dtype != DTYPE:
        scores = scores.astype(DTYPE)
    weights = softmax(scores)
    if trace is not None:
        trace.append((weights.copy(), k_positions.copy()))
    context = grouped_context(weights, layer_kv.values, n_rep)
    return linear(merge_heads(context), wo, bo)
