"""Causal self-attention with explicit position IDs and KV-cache reuse.

The causal mask is derived from position IDs, not array indices:
``query may attend to key  iff  key_position <= query_position``.
With contiguous IDs this is the ordinary lower-triangular mask; with
Prompt Cache's gapped IDs it is exactly the semantics the paper relies on —
a module encoded alone attends only within itself (the paper's implicit
per-module mask, §3.3), and uncached suffix tokens attend to every cached
module that the schema placed before them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.layers import DTYPE, linear, softmax
from repro.llm.kv import LayerKV
from repro.llm.positional.alibi import AlibiBias
from repro.llm.positional.rope import RotaryEmbedding

_NEG_INF = np.float32(-1e9)


def split_heads(x: np.ndarray, n_heads: int) -> np.ndarray:
    """(T, n_heads * head_dim) -> (n_heads, T, head_dim)."""
    t, width = x.shape
    return x.reshape(t, n_heads, width // n_heads).transpose(1, 0, 2)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """(n_heads, T, head_dim) -> (T, n_heads * head_dim)."""
    heads, t, head_dim = x.shape
    return x.transpose(1, 0, 2).reshape(t, heads * head_dim)


def repeat_kv(x: np.ndarray, n_rep: int) -> np.ndarray:
    """Expand KV heads for grouped-query attention (no copy when n_rep==1)."""
    if n_rep == 1:
        return x
    return np.repeat(x, n_rep, axis=0)


def causal_position_mask(
    q_positions: np.ndarray, k_positions: np.ndarray
) -> np.ndarray:
    """Boolean (Tq, Tk) mask, True where attention is allowed."""
    return np.asarray(k_positions)[None, :] <= np.asarray(q_positions)[:, None]


def attention_scores(
    q: np.ndarray,
    k: np.ndarray,
    q_positions: np.ndarray,
    k_positions: np.ndarray,
    alibi: AlibiBias | None = None,
) -> np.ndarray:
    """Masked, scaled scores (n_heads, Tq, Tk) before softmax."""
    head_dim = q.shape[-1]
    scores = q @ k.transpose(0, 2, 1) / np.sqrt(np.float32(head_dim))
    if alibi is not None:
        scores = scores + alibi.bias(q_positions, k_positions)
    allowed = causal_position_mask(q_positions, k_positions)
    return np.where(allowed[None, :, :], scores, _NEG_INF)


def _mask_free(layer_kv, k_positions: np.ndarray, position) -> bool:
    """True when a single query at ``position`` sits at or after every
    cached key, so the causal mask would be an elementwise identity.
    Uses the cache's O(1) ``max_position`` when it tracks one; falls
    back to scanning the positions array for duck-typed caches."""
    max_position = getattr(layer_kv, "max_position", None)
    if max_position is not None:
        return max_position <= position
    return bool((k_positions <= position).all())


def grouped_scores(q: np.ndarray, k: np.ndarray, n_rep: int) -> np.ndarray:
    """Scaled scores (n_heads, Tq, Tk) without expanding KV heads.

    For GQA (``n_rep > 1``) the query heads are folded into
    ``(n_kv_heads, n_rep, Tq, head_dim)`` and matmul broadcasts the
    un-expanded keys across the group axis. Each 2-D GEMM slice is the
    same ``q_h @ k_g.T`` product the :func:`repeat_kv` path computes, so
    the result is bit-identical — minus the ``n_rep×`` key/value copy.
    """
    head_dim = q.shape[-1]
    scale = np.sqrt(np.float32(head_dim))
    if n_rep == 1:
        scores = q @ k.transpose(0, 2, 1)
        scores /= scale
        return scores
    n_heads, tq, _ = q.shape
    n_kv = k.shape[0]
    folded = q.reshape(n_kv, n_rep, tq, head_dim)
    scores = folded @ k[:, None, :, :].transpose(0, 1, 3, 2)
    scores /= scale
    return scores.reshape(n_heads, tq, -1)


def grouped_context(weights: np.ndarray, v: np.ndarray, n_rep: int) -> np.ndarray:
    """``weights @ values`` (n_heads, Tq, head_dim) without expanding values."""
    if n_rep == 1:
        return weights @ v
    n_heads, tq, tk = weights.shape
    n_kv = v.shape[0]
    context = weights.reshape(n_kv, n_rep, tq, tk) @ v[:, None, :, :]
    return context.reshape(n_heads, tq, -1)


# -- two-phase shared-prefix attention (ChunkAttention, arxiv 2402.15220) ------
#
# When many in-flight sequences decode over the *same* spliced module KV,
# attention over the shared prefix can be computed once per physical copy
# instead of once per sequence: a chunk-first phase produces partial
# softmax statistics (running max, exp-sum, weighted context) for every
# sequence's query over the shared chunk with one stacked kernel call
# streaming one buffer, a per-sequence phase covers each private suffix,
# and the online-softmax merge combines them. The merge is algebraically
# exact (the FlashAttention identity); floating point is reassociated, so
# activations agree with the single-pass kernel to a few ulps rather than
# bit-for-bit — greedy decode outputs are byte-identical, which is what
# the serving tests pin.


def _stacked_grouped_scores(q: np.ndarray, k: np.ndarray, n_rep: int) -> np.ndarray:
    """:func:`grouped_scores` with optional leading stack axes on ``q``.

    ``q`` is (..., n_heads, Tq, head_dim) — the leading axes stack the
    queries of every sequence in a shared group — and ``k`` is one
    un-expanded (n_kv_heads, Tk, head_dim) buffer broadcast across the
    stack, so the shared keys are streamed once for the whole group.
    """
    head_dim = q.shape[-1]
    scale = np.sqrt(np.float32(head_dim))
    if n_rep == 1:
        scores = q @ np.swapaxes(k, -2, -1)
        scores /= scale
        return scores
    *lead, n_heads, tq, _ = q.shape
    n_kv = k.shape[0]
    folded = q.reshape(*lead, n_kv, n_rep, tq, head_dim)
    scores = folded @ np.swapaxes(k, -2, -1)[:, None, :, :]
    scores /= scale
    return scores.reshape(*lead, n_heads, tq, -1)


def _stacked_grouped_context(weights: np.ndarray, v: np.ndarray, n_rep: int) -> np.ndarray:
    """:func:`grouped_context` with optional leading stack axes on ``weights``."""
    if n_rep == 1:
        return weights @ v
    *lead, n_heads, tq, tk = weights.shape
    n_kv = v.shape[0]
    folded = weights.reshape(*lead, n_kv, n_rep, tq, tk)
    context = folded @ v[:, None, :, :]
    return context.reshape(*lead, n_heads, tq, -1)


@dataclass
class ChunkPartial:
    """Partial softmax-attention statistics over one KV chunk.

    ``m`` is the running max of the (scaled, biased) scores, ``l`` the
    exp-sum relative to ``m``, and ``acc`` the un-normalized weighted
    context — the classic online-softmax triple. Shapes carry whatever
    leading stack axes the query had: ``m``/``l`` are
    (..., n_heads, Tq, 1) and ``acc`` is (..., n_heads, Tq, head_dim).
    """

    m: np.ndarray
    l: np.ndarray
    acc: np.ndarray

    def __getitem__(self, index) -> "ChunkPartial":
        """Select one sequence's partial out of a stacked chunk phase."""
        return ChunkPartial(self.m[index], self.l[index], self.acc[index])


def chunk_phase(
    q_stack: np.ndarray,
    shared_k: np.ndarray,
    shared_v: np.ndarray,
    n_rep: int = 1,
    *,
    bias: np.ndarray | None = None,
    allowed: np.ndarray | None = None,
) -> ChunkPartial:
    """Partial attention of stacked queries over one shared KV chunk.

    ``q_stack`` is (..., n_heads, Tq, head_dim) — for a shared group the
    leading axis stacks every member's query, so the chunk's keys and
    values are each streamed from *one* physical buffer once for the
    whole group. ``shared_k``/``shared_v`` are (n_kv_heads, Ts, head_dim);
    GQA queries fold onto the un-expanded KV heads exactly as
    :func:`grouped_scores` does. ``bias`` (e.g. ALiBi) and ``allowed``
    (causal mask, True where attention is permitted) must broadcast
    against the (..., n_heads, Tq, Ts) score block.

    An empty chunk (``Ts == 0``) yields the neutral partial — ``m`` at
    the mask floor, zero ``l``/``acc`` — which merges as a no-op.
    """
    if shared_k.shape[-2] == 0:
        stat_shape = q_stack.shape[:-1] + (1,)
        return ChunkPartial(
            m=np.full(stat_shape, _NEG_INF, dtype=DTYPE),
            l=np.zeros(stat_shape, dtype=DTYPE),
            acc=np.zeros(q_stack.shape, dtype=DTYPE),
        )
    scores = _stacked_grouped_scores(q_stack, shared_k, n_rep)
    if bias is not None:
        scores = scores + bias
    if allowed is not None:
        scores = np.where(allowed, scores, _NEG_INF)
    if scores.dtype != DTYPE:
        scores = scores.astype(DTYPE)
    m = scores.max(axis=-1, keepdims=True)
    p = np.exp(scores - m)
    l = p.sum(axis=-1, keepdims=True)
    return ChunkPartial(m=m, l=l, acc=_stacked_grouped_context(p, shared_v, n_rep))


def merge_online_softmax(*partials: ChunkPartial) -> np.ndarray:
    """Combine chunk partials into the normalized attention context.

    The online-softmax identity: with global max ``m*``, the exact
    softmax context over the concatenated chunks is
    ``sum_i acc_i * e^(m_i - m*) / sum_i l_i * e^(m_i - m*)`` — splitting
    a KV range at arbitrary chunk boundaries and merging reproduces the
    single-pass result (property-tested to tight tolerance; the
    reassociated sums round differently at the last ulp). At least one
    chunk must have attended somewhere (all-empty merges divide by zero).
    """
    if not partials:
        raise ValueError("merge_online_softmax needs at least one partial")
    m = partials[0].m
    for part in partials[1:]:
        m = np.maximum(m, part.m)
    l = np.zeros_like(partials[0].l)
    acc = np.zeros_like(partials[0].acc)
    for part in partials:
        correction = np.exp(part.m - m)
        l = l + part.l * correction
        acc = acc + part.acc * correction
    return acc / l


def _decode_context(
    qb: np.ndarray,
    layer_kv,
    pos: np.ndarray,
    n_rep: int,
    alibi: AlibiBias | None,
) -> np.ndarray:
    """One sequence's single-pass decode attention (the legacy kernel).

    Extracted verbatim from the :func:`decode_attention_batch` loop body
    so the shared-group path can fall back to it per sequence — the op
    sequence is unchanged and the result stays bit-identical to the
    pre-ChunkAttention path.
    """
    k_positions = layer_kv.positions
    scores = grouped_scores(qb, layer_kv.keys, n_rep)
    if alibi is not None:
        scores = scores + alibi.bias(pos, k_positions)
    if not _mask_free(layer_kv, k_positions, pos[0]):
        allowed = causal_position_mask(pos, k_positions)
        scores = np.where(allowed[None, :, :], scores, _NEG_INF)
    if scores.dtype != DTYPE:
        scores = scores.astype(DTYPE)
    weights = softmax(scores)
    return merge_heads(grouped_context(weights, layer_kv.values, n_rep))


def decode_attention_batch(
    x: np.ndarray,
    *,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    wo: np.ndarray,
    bq: np.ndarray | None,
    bk: np.ndarray | None,
    bv: np.ndarray | None,
    bo: np.ndarray | None,
    n_heads: int,
    n_kv_heads: int,
    position_ids: np.ndarray,
    layer_kvs: list[LayerKV],
    rope: RotaryEmbedding | None = None,
    alibi: AlibiBias | None = None,
    shared_groups: list[tuple[list[int], int]] | None = None,
) -> np.ndarray:
    """One attention layer for a batched single-token decode step.

    ``x`` is (B, 1, d_model) — one freshly sampled token per in-flight
    sequence — and ``layer_kvs`` holds the B per-sequence caches.
    ``position_ids`` is (B, 1). Returns (B, 1, d_model).

    The q/k/v/output projections run as one stacked 3-D matmul each:
    NumPy evaluates a ``(B, 1, d) @ (d, n)`` product slice by slice, so
    every row is the exact GEMM the single-sequence path computes and
    the result is bit-identical to B separate :func:`self_attention`
    calls. (A flattened ``(B, d) @ (d, n)`` GEMM would *not* be — BLAS
    blocks the reduction differently at M > 1.) Attention itself runs
    per sequence because each sequence attends over its own cache —
    mirroring the single path's decode fast-path exactly, including the
    mask skip when the query position is at or after every cached key.

    ``shared_groups`` is the ChunkAttention grouping: ``(members,
    shared_len)`` entries where ``members`` indexes sequences whose
    caches were forked from one pre-spliced base and whose first
    ``shared_len`` mirror tokens are therefore one logical (and, modulo
    private-mirror seeds, one physical) KV prefix. Grouped sequences take
    the two-phase path — :func:`chunk_phase` over the shared prefix once
    per group, a private-suffix phase each, :func:`merge_online_softmax`
    to combine — and fall back to the single-pass kernel whenever the
    causal mask would be non-trivial (never during ordinary decode).
    """
    q = linear(x, wq, bq)
    k = linear(x, wk, bk)
    v = linear(x, wv, bv)
    n_rep = n_heads // n_kv_heads

    # Cross-sequence head split + rotation in one pass each: reshape/
    # transpose are exact and rotation is elementwise, so qh[b] is
    # bit-identical to split_heads(q[b]) fed through rope.apply — B
    # Python round-trips per layer collapse into two array ops.
    batch, t, _ = x.shape
    qh = q.reshape(batch, t, n_heads, -1).transpose(0, 2, 1, 3)
    kh = k.reshape(batch, t, n_kv_heads, -1).transpose(0, 2, 1, 3)
    vh = v.reshape(batch, t, n_kv_heads, -1).transpose(0, 2, 1, 3)
    if rope is not None:
        qh = rope.apply_stacked(qh, position_ids)
        kh = rope.apply_stacked(kh, position_ids)

    grouped: set[int] = set()
    group_plan: list[tuple[list[int], int]] = []
    if shared_groups:
        for members, shared_len in shared_groups:
            members = [b for b in members if 0 <= b < batch]
            if members and shared_len > 0:
                group_plan.append((members, shared_len))
                grouped.update(members)

    contexts: list[np.ndarray | None] = [None] * batch
    for b, layer_kv in enumerate(layer_kvs):
        pos = position_ids[b]
        layer_kv.append(kh[b], vh[b], pos)
        if b not in grouped:
            contexts[b] = _decode_context(qh[b], layer_kv, pos, n_rep, alibi)

    for members, shared_len in group_plan:
        # Two-phase members must be mask-free over their whole cache (the
        # ordinary decode state: the new token's position is at or after
        # every cached key); anything unusual takes the single-pass path.
        ready = []
        for b in members:
            layer_kv = layer_kvs[b]
            if len(layer_kv) > shared_len and _mask_free(
                layer_kv, layer_kv.positions, position_ids[b][0]
            ):
                ready.append(b)
            else:
                contexts[b] = _decode_context(
                    qh[b], layer_kv, position_ids[b], n_rep, alibi
                )
        if not ready:
            continue
        # Chunk phase: every ready member's query over the shared prefix,
        # streamed from one representative's mirror (all members' first
        # shared_len tokens are the same spliced base image).
        rep = layer_kvs[ready[0]]
        shared_k = rep.keys[:, :shared_len]
        shared_v = rep.values[:, :shared_len]
        bias_stack = None
        if alibi is not None:
            shared_pos = rep.positions[:shared_len]
            bias_stack = np.stack(
                [alibi.bias(position_ids[b], shared_pos) for b in ready]
            )
        shared_part = chunk_phase(
            qh[ready], shared_k, shared_v, n_rep, bias=bias_stack
        )
        # Per-sequence phase over each private suffix, then the merge.
        for g, b in enumerate(ready):
            layer_kv = layer_kvs[b]
            pos = position_ids[b]
            tail_bias = (
                alibi.bias(pos, layer_kv.positions[shared_len:])
                if alibi is not None
                else None
            )
            tail_part = chunk_phase(
                qh[b],
                layer_kv.keys[:, shared_len:],
                layer_kv.values[:, shared_len:],
                n_rep,
                bias=tail_bias,
            )
            contexts[b] = merge_heads(
                merge_online_softmax(shared_part[g], tail_part)
            )

    return linear(np.stack(contexts), wo, bo)


def self_attention(
    x: np.ndarray,
    *,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    wo: np.ndarray,
    bq: np.ndarray | None,
    bk: np.ndarray | None,
    bv: np.ndarray | None,
    bo: np.ndarray | None,
    n_heads: int,
    n_kv_heads: int,
    position_ids: np.ndarray,
    layer_kv: LayerKV,
    rope: RotaryEmbedding | None = None,
    alibi: AlibiBias | None = None,
    trace: list | None = None,
) -> np.ndarray:
    """One attention layer over ``x`` (T, d_model), updating ``layer_kv``.

    New tokens' K/V are appended to ``layer_kv`` (with their position IDs)
    and attention runs over *all* cached entries — whether they came from an
    earlier forward pass, a decode step, or a spliced-in prompt module.

    When ``trace`` is a list, the post-softmax attention weights
    ``(n_heads, Tq, Tk)`` and the key position IDs are appended to it —
    the introspection hook used by :func:`repro.llm.introspect.attention_trace`.
    """
    q = split_heads(linear(x, wq, bq), n_heads)
    k = split_heads(linear(x, wk, bk), n_kv_heads)
    v = split_heads(linear(x, wv, bv), n_kv_heads)

    if rope is not None:
        q = rope.apply(q, position_ids)
        k = rope.apply(k, position_ids)

    layer_kv.append(k, v, position_ids)
    n_rep = n_heads // n_kv_heads
    k_positions = layer_kv.positions

    scores = grouped_scores(q, layer_kv.keys, n_rep)
    if alibi is not None:
        scores = scores + alibi.bias(position_ids, k_positions)
    if q.shape[1] == 1 and _mask_free(layer_kv, k_positions, position_ids[0]):
        # Decode fast path: a single query token whose position is at or
        # after every cached key — the causal mask is all-True, so the
        # np.where would be an elementwise identity. Skip building it.
        pass
    else:
        allowed = causal_position_mask(position_ids, k_positions)
        scores = np.where(allowed[None, :, :], scores, _NEG_INF)
    if scores.dtype != DTYPE:
        scores = scores.astype(DTYPE)
    weights = softmax(scores)
    if trace is not None:
        trace.append((weights.copy(), k_positions.copy()))
    context = grouped_context(weights, layer_kv.values, n_rep)
    return linear(merge_heads(context), wo, bo)
