"""Position-encoding schemes, all supporting *discontinuous* position IDs.

Prompt Cache assigns each prompt module an absolute position range inside
its schema; a prompt that imports a subset of modules therefore presents the
model with position IDs that have gaps (paper §3.3). Each scheme here takes
explicit position-ID arrays rather than assuming ``0..n-1``, mirroring the
~20-line per-model adaptations the paper describes (§4.2):

- :class:`RotaryEmbedding` (Llama, Falcon) — cos/sin lookup tables indexed
  by position ID.
- :class:`AlibiBias` (MPT, Bloom) — linear bias recomputed from the actual
  query/key position IDs instead of a fixed lower-triangular matrix.
- :class:`LearnedPositionalEmbedding` (BERT, GPT-2) — plain table lookup,
  which needs no adaptation at all.
"""

from repro.llm.positional.rope import RotaryEmbedding
from repro.llm.positional.alibi import AlibiBias, alibi_slopes
from repro.llm.positional.learned import LearnedPositionalEmbedding

__all__ = [
    "RotaryEmbedding",
    "AlibiBias",
    "alibi_slopes",
    "LearnedPositionalEmbedding",
]
