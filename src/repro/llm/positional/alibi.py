"""ALiBi linear attention bias driven by explicit position IDs.

ALiBi (Press et al., 2022) adds ``-slope_h * distance`` to attention scores.
Stock implementations materialize a fixed lower-triangular distance matrix;
for Prompt Cache the distance must come from the *assigned* position IDs —
the adaptation the paper describes as a bias lookup table (§4.2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.llm.layers import DTYPE


def alibi_slopes(n_heads: int) -> np.ndarray:
    """Per-head slopes from the ALiBi paper's geometric recipe.

    For ``n`` a power of two the slopes are ``2^(-8i/n)``; otherwise the
    closest power of two is used and interleaved, matching the reference
    implementation.
    """

    def power_of_two_slopes(n: int) -> list[float]:
        start = 2.0 ** (-(2.0 ** -(math.log2(n) - 3)))
        return [start * (start**i) for i in range(n)]

    if math.log2(n_heads).is_integer():
        slopes = power_of_two_slopes(n_heads)
    else:
        closest = 2 ** math.floor(math.log2(n_heads))
        slopes = power_of_two_slopes(closest)
        extra = power_of_two_slopes(2 * closest)[0::2]
        slopes += extra[: n_heads - closest]
    return np.asarray(slopes, dtype=DTYPE)


class AlibiBias:
    """Computes the additive attention bias for arbitrary position IDs."""

    def __init__(self, n_heads: int, max_position: int) -> None:
        self.n_heads = n_heads
        self.max_position = max_position
        self.slopes = alibi_slopes(n_heads)

    def bias(self, q_positions: np.ndarray, k_positions: np.ndarray) -> np.ndarray:
        """Bias of shape (n_heads, Tq, Tk): ``slope * (k_pos - q_pos)``.

        Keys at or before the query (``k_pos <= q_pos``) receive a
        non-positive bias growing with distance; causal masking is applied
        separately in the attention kernel.
        """
        q_positions = np.asarray(q_positions)
        k_positions = np.asarray(k_positions)
        distance = (
            k_positions[None, :].astype(DTYPE) - q_positions[:, None].astype(DTYPE)
        )  # (Tq, Tk), <= 0 for attendable keys
        return self.slopes[:, None, None] * distance[None, :, :]
