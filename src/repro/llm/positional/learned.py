"""Learned absolute position embeddings (BERT / GPT-2 style).

This is the one scheme the paper notes needs *no* adaptation for
discontinuous position IDs (§4.2): the embedding table is already a lookup
keyed by position ID.
"""

from __future__ import annotations

import numpy as np


class LearnedPositionalEmbedding:
    """Adds a learned per-position vector to the token embeddings."""

    def __init__(self, table: np.ndarray) -> None:
        self.table = table  # (max_position, d_model)
        self.max_position = table.shape[0]

    def apply(self, hidden: np.ndarray, position_ids: np.ndarray) -> np.ndarray:
        """``hidden`` is (T, d_model); returns hidden + table[position_ids]."""
        position_ids = np.asarray(position_ids)
        if position_ids.size and (
            position_ids.min() < 0 or position_ids.max() >= self.max_position
        ):
            raise ValueError(
                f"position ids must lie in [0, {self.max_position}); "
                f"got range [{position_ids.min()}, {position_ids.max()}]"
            )
        return hidden + self.table[position_ids]
