"""Rotary position embedding with a position-ID lookup table.

Stock RoPE implementations rotate by positions ``0..n-1``; Prompt Cache
needs rotations at arbitrary (possibly gapped) IDs, so — exactly as the
paper's adaptation (§4.2) — the full cos/sin tables are precomputed up to
``max_position`` and indexed by whatever position IDs arrive.
"""

from __future__ import annotations

import numpy as np

from repro.llm.layers import DTYPE


class RotaryEmbedding:
    """Precomputed rotation tables applied to query/key heads.

    Uses the rotate-half formulation (Llama convention): the head dimension
    is split into two halves that form the (real, imaginary) components.
    """

    def __init__(self, head_dim: int, max_position: int, theta: float = 10000.0) -> None:
        if head_dim % 2:
            raise ValueError("RoPE requires an even head dimension")
        self.head_dim = head_dim
        self.max_position = max_position
        inv_freq = 1.0 / (theta ** (np.arange(0, head_dim, 2) / head_dim))
        angles = np.outer(np.arange(max_position), inv_freq)  # (P, head_dim/2)
        # Duplicate to full head_dim so application is a single elementwise op.
        full = np.concatenate([angles, angles], axis=-1)
        self._cos = np.cos(full).astype(DTYPE)  # (P, head_dim)
        self._sin = np.sin(full).astype(DTYPE)

    def apply(self, x: np.ndarray, position_ids: np.ndarray) -> np.ndarray:
        """Rotate ``x`` of shape (heads, T, head_dim) by per-token positions.

        ``position_ids`` is any integer array of shape (T,); gaps and
        non-zero starts are the whole point.
        """
        position_ids = np.asarray(position_ids)
        if position_ids.ndim != 1 or position_ids.shape[0] != x.shape[-2]:
            raise ValueError(
                f"position_ids shape {position_ids.shape} does not match "
                f"sequence length {x.shape[-2]}"
            )
        if position_ids.size and (
            position_ids.min() < 0 or position_ids.max() >= self.max_position
        ):
            raise ValueError(
                f"position ids must lie in [0, {self.max_position}); "
                f"got range [{position_ids.min()}, {position_ids.max()}]"
            )
        cos = self._cos[position_ids]  # (T, head_dim)
        sin = self._sin[position_ids]
        return x * cos + _rotate_half(x) * sin

    def apply_stacked(self, x: np.ndarray, position_ids: np.ndarray) -> np.ndarray:
        """Rotate a cross-sequence stack (B, heads, T, head_dim) by
        per-sequence positions (B, T) in one elementwise pass.

        Rotation is purely elementwise, so this is bit-identical to B
        separate :meth:`apply` calls — it exists so the batched decode
        step pays one table lookup instead of 2·B Python calls per layer.
        """
        position_ids = np.asarray(position_ids)
        if position_ids.ndim != 2 or position_ids.shape != (
            x.shape[0], x.shape[-2]
        ):
            raise ValueError(
                f"position_ids shape {position_ids.shape} does not match "
                f"stacked shape {(x.shape[0], x.shape[-2])}"
            )
        if position_ids.size and (
            position_ids.min() < 0 or position_ids.max() >= self.max_position
        ):
            raise ValueError(
                f"position ids must lie in [0, {self.max_position}); "
                f"got range [{position_ids.min()}, {position_ids.max()}]"
            )
        cos = self._cos[position_ids][:, None]  # (B, 1, T, head_dim)
        sin = self._sin[position_ids][:, None]
        return x * cos + _rotate_half(x) * sin


def _rotate_half(x: np.ndarray) -> np.ndarray:
    half = x.shape[-1] // 2
    return np.concatenate([-x[..., half:], x[..., :half]], axis=-1)
