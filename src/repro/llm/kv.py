"""Key/value attention-state containers.

Two pieces of the paper live here:

- Every cached key/value carries its **position ID** (paper §3.3): cached
  module states sit at schema-assigned absolute positions, and the suffix
  prefill needs those IDs for causal masking and ALiBi bias.
- **Buffered concatenation** (paper §4.2): assembling a prompt's KV from
  cached modules would, with naive ``np.concatenate``, allocate a fresh
  buffer per module. :class:`LayerKV` preallocates one buffer and copies
  module states into it; appends reuse spare capacity and grow
  geometrically. :func:`buffered_concat` exposes the same trick for raw
  arrays, with an allocation counter used by the concat ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.contracts import shape_contract
from repro.llm.config import ModelConfig
from repro.llm.layers import DTYPE

# Module-level counter of buffer allocations, for the Abl-3 concat bench.
_ALLOCATION_COUNT = 0

# Optional in-place-write guard (repro.analysis.sanitize). None in
# production; when installed it sees every buffer a LayerKV is about to
# write into, and rejects mapped (snapshot-backed) or read-only arenas.
_WRITE_GUARD = None


def set_write_guard(fn) -> None:
    """Install (or clear, with ``None``) the KV write guard."""
    global _WRITE_GUARD
    _WRITE_GUARD = fn


def is_mapped_array(array) -> bool:
    """True when ``array`` is (a view over) a ``np.memmap`` — i.e. its
    bytes come from a file mapping, shared with every process that
    attached the same snapshot, rather than private memory."""
    seen = array
    while isinstance(seen, np.ndarray):
        if isinstance(seen, np.memmap):
            return True
        seen = seen.base
    return False


def allocation_count() -> int:
    return _ALLOCATION_COUNT


def reset_allocation_count() -> None:
    global _ALLOCATION_COUNT
    _ALLOCATION_COUNT = 0


def _alloc(shape: tuple[int, ...], dtype=DTYPE) -> np.ndarray:
    global _ALLOCATION_COUNT
    _ALLOCATION_COUNT += 1
    return np.empty(shape, dtype=dtype)


def tracked_alloc(shape: tuple[int, ...], dtype=DTYPE) -> np.ndarray:
    """Allocate an uninitialized buffer, counted by :func:`allocation_count`.

    The paged store and the splice fast path route their buffer
    allocations through here so the concat/splice benches can compare
    allocation behaviour across code paths with one counter.
    """
    return _alloc(shape, dtype=dtype)


class LayerKV:
    """Growable KV buffer for one transformer layer.

    Keys/values have shape ``(n_kv_heads, T, head_dim)`` and ``positions``
    is the ``(T,)`` int array of absolute position IDs — contiguous for
    ordinary KV-cache decoding, gapped under Prompt Cache.
    """

    def __init__(
        self,
        n_kv_heads: int,
        head_dim: int,
        capacity: int = 64,
    ) -> None:
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self._keys = _alloc((n_kv_heads, capacity, head_dim))
        self._values = _alloc((n_kv_heads, capacity, head_dim))
        self._positions = np.empty(capacity, dtype=np.int64)
        self._length = 0
        # Highest cached position ID, maintained on append so the decode
        # fast path can test "query at or after every key" in O(1)
        # instead of scanning the positions array every layer and step.
        # -1 = empty (positions are non-negative).
        self.max_position = -1

    @classmethod
    @shape_contract(keys="(n_kv_heads, T, head_dim)", values="(n_kv_heads, T, head_dim)")
    def from_arrays(
        cls, keys: np.ndarray, values: np.ndarray, positions: np.ndarray
    ) -> "LayerKV":
        """Wrap existing (n_kv_heads, T, head_dim) arrays without copying headroom."""
        n_kv_heads, length, head_dim = keys.shape
        kv = cls(n_kv_heads, head_dim, capacity=max(length, 1))
        kv.append(keys, values, positions)
        return kv

    @classmethod
    @shape_contract(
        keys="(n_kv_heads, capacity, head_dim)",
        values="(n_kv_heads, capacity, head_dim)",
    )
    def adopt(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray,
        length: int,
    ) -> "LayerKV":
        """Take ownership of preallocated buffers **without copying**.

        ``keys``/``values`` are (n_kv_heads, capacity, head_dim) buffers
        whose first ``length`` tokens are valid; ``positions`` is the
        matching (capacity,) int64 buffer. Appends write into the spare
        capacity in place; growth beyond it reallocates privately. This is
        the splice fast path: one arena allocation serves every layer.
        """
        n_kv_heads, capacity, head_dim = keys.shape
        if not (0 <= length <= capacity):
            raise ValueError(f"length {length} outside buffer capacity {capacity}")
        kv = cls.__new__(cls)
        kv.n_kv_heads = n_kv_heads
        kv.head_dim = head_dim
        kv._keys = keys
        kv._values = values
        kv._positions = positions
        kv._length = length
        kv.max_position = int(positions[:length].max()) if length else -1
        return kv

    def __len__(self) -> int:
        return self._length

    @property
    def keys(self) -> np.ndarray:
        """View (no copy) of the live keys, shape (n_kv_heads, len, head_dim)."""
        return self._keys[:, : self._length, :]

    @property
    def values(self) -> np.ndarray:
        return self._values[:, : self._length, :]

    @property
    def positions(self) -> np.ndarray:
        return self._positions[: self._length]

    def reserve(self, total: int) -> None:
        """Ensure capacity for ``total`` tokens, growing geometrically."""
        capacity = self._keys.shape[1]
        if total <= capacity:
            return
        new_capacity = max(total, 2 * capacity)
        for name in ("_keys", "_values"):
            old = getattr(self, name)
            grown = _alloc((self.n_kv_heads, new_capacity, self.head_dim))
            grown[:, : self._length, :] = old[:, : self._length, :]
            setattr(self, name, grown)
        positions = np.empty(new_capacity, dtype=np.int64)
        positions[: self._length] = self._positions[: self._length]
        self._positions = positions

    @shape_contract(keys="(n_kv_heads, T, head_dim)", values="(n_kv_heads, T, head_dim)")
    def append(
        self, keys: np.ndarray, values: np.ndarray, positions: np.ndarray
    ) -> None:
        """Append new tokens' KV states (the per-step cache update)."""
        added = keys.shape[1]
        if values.shape[1] != added or len(positions) != added:
            raise ValueError("keys, values and positions must agree on length")
        self.reserve(self._length + added)
        if _WRITE_GUARD is not None:
            _WRITE_GUARD(self._keys)
            _WRITE_GUARD(self._values)
        end = self._length + added
        self._keys[:, self._length : end, :] = keys
        self._values[:, self._length : end, :] = values
        self._positions[self._length : end] = positions
        self._length = end
        if added:
            self.max_position = max(self.max_position, int(positions.max()))

    def copy(self) -> "LayerKV":
        dup = LayerKV(self.n_kv_heads, self.head_dim, capacity=max(self._length, 1))
        dup.append(self.keys, self.values, self.positions)
        return dup

    def nbytes(self) -> int:
        """Bytes held by live entries (excluding spare capacity)."""
        return int(self.keys.nbytes + self.values.nbytes + self.positions.nbytes)


class KVCache:
    """Whole-model KV cache: one :class:`LayerKV` per transformer layer."""

    def __init__(self, layers: list[LayerKV]) -> None:
        self.layers = layers

    @classmethod
    def empty(cls, config: ModelConfig, capacity: int = 64) -> "KVCache":
        return cls(
            [
                LayerKV(config.n_kv_heads, config.head_dim, capacity=capacity)
                for _ in range(config.n_layers)
            ]
        )

    def __len__(self) -> int:
        """Number of cached tokens (identical across layers)."""
        return len(self.layers[0]) if self.layers else 0

    def copy(self) -> "KVCache":
        return KVCache([layer.copy() for layer in self.layers])

    def nbytes(self) -> int:
        return sum(layer.nbytes() for layer in self.layers)

    def reserve(self, total: int) -> None:
        for layer in self.layers:
            layer.reserve(total)


def buffered_concat(arrays: list[np.ndarray], axis: int = 1) -> np.ndarray:
    """Concatenate with a single preallocated buffer (paper §4.2).

    Equivalent to ``np.concatenate`` but performs exactly one allocation,
    which the concat ablation bench contrasts with pairwise concatenation's
    ``len(arrays) - 1`` intermediate buffers.
    """
    if not arrays:
        raise ValueError("nothing to concatenate")
    first = arrays[0]
    total = sum(a.shape[axis] for a in arrays)
    shape = list(first.shape)
    shape[axis] = total
    out = _alloc(tuple(shape), dtype=first.dtype)
    offset = 0
    index: list[slice] = [slice(None)] * first.ndim
    for a in arrays:
        index[axis] = slice(offset, offset + a.shape[axis])
        out[tuple(index)] = a
        offset += a.shape[axis]
    return out


def naive_concat(arrays: list[np.ndarray], axis: int = 1) -> np.ndarray:
    """Pairwise concatenation (the default PyTorch-style behaviour the
    paper's buffered operator replaces); counts every intermediate buffer."""
    if not arrays:
        raise ValueError("nothing to concatenate")
    out = arrays[0]
    for a in arrays[1:]:
        joined = _alloc(
            tuple(
                out.shape[i] + a.shape[i] if i == axis % out.ndim else out.shape[i]
                for i in range(out.ndim)
            ),
            dtype=out.dtype,
        )
        index: list[slice] = [slice(None)] * out.ndim
        index[axis] = slice(0, out.shape[axis])
        joined[tuple(index)] = out
        index[axis] = slice(out.shape[axis], None)
        joined[tuple(index)] = a
        out = joined
    return out


@dataclass
class ModuleKV:
    """Encoded attention states of one prompt module (all layers).

    ``keys[i]``/``values[i]`` are the layer-``i`` tensors of shape
    ``(n_kv_heads, T, head_dim)``; ``positions`` is the shared ``(T,)``
    absolute position-ID array assigned by the schema layout.

    When the module was encoded through the splice fast path, the
    per-layer tensors are views into one contiguous **layer-major arena**
    of shape ``(n_layers, n_kv_heads, T, head_dim)`` (``key_arena`` /
    ``value_arena``), so splicing can copy a whole module — every layer —
    with a single memcpy instead of ``n_layers`` slice copies.
    """

    keys: list[np.ndarray]
    values: list[np.ndarray]
    positions: np.ndarray
    key_arena: np.ndarray | None = None
    value_arena: np.ndarray | None = None

    @classmethod
    @shape_contract(
        key_arena="(n_layers, n_kv_heads, T, head_dim)",
        value_arena="(n_layers, n_kv_heads, T, head_dim)",
    )
    def from_arenas(
        cls, key_arena: np.ndarray, value_arena: np.ndarray, positions: np.ndarray
    ) -> "ModuleKV":
        """Build from (n_layers, n_kv_heads, T, head_dim) arenas; the
        per-layer lists become zero-copy views."""
        return cls(
            keys=list(key_arena),
            values=list(value_arena),
            positions=positions,
            key_arena=key_arena,
            value_arena=value_arena,
        )

    @property
    def is_arena(self) -> bool:
        return self.key_arena is not None

    @property
    def is_mapped(self) -> bool:
        """True when the tensors live in a file-backed snapshot mapping
        (attached read-only, shared across same-host workers) rather than
        private memory. Mapped modules must never be written in place."""
        if self.is_arena:
            return is_mapped_array(self.key_arena) or is_mapped_array(self.value_arena)
        return any(is_mapped_array(a) for a in (*self.keys, *self.values))

    def ensure_arena(self) -> "ModuleKV":
        """Return an arena-backed equivalent (self when already one).

        Stacking costs one allocation + copy per tensor; codecs that
        rebuild per-layer arrays (fp16/int8) land here on decode.
        """
        if self.is_arena:
            return self
        n_layers = len(self.keys)
        if n_layers == 0:
            return self
        head_shape = self.keys[0].shape
        key_arena = _alloc((n_layers, *head_shape), dtype=self.keys[0].dtype)
        value_arena = _alloc((n_layers, *head_shape), dtype=self.values[0].dtype)
        for i in range(n_layers):
            key_arena[i] = self.keys[i]
            value_arena[i] = self.values[i]
        return ModuleKV.from_arenas(key_arena, value_arena, self.positions)

    def __len__(self) -> int:
        return int(self.positions.shape[0])

    def nbytes(self) -> int:
        tensors = sum(k.nbytes + v.nbytes for k, v in zip(self.keys, self.values))
        return int(tensors + self.positions.nbytes)

    def slice(self, start: int, stop: int) -> "ModuleKV":
        """Token-range view (used for parameter-slot surgery)."""
        if self.is_arena:
            return ModuleKV.from_arenas(
                self.key_arena[:, :, start:stop, :],
                self.value_arena[:, :, start:stop, :],
                self.positions[start:stop],
            )
        return ModuleKV(
            keys=[k[:, start:stop, :] for k in self.keys],
            values=[v[:, start:stop, :] for v in self.values],
            positions=self.positions[start:stop],
        )
