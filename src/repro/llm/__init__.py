"""NumPy transformer inference engine.

The substrate the paper assumes (HF transformers + PyTorch), rebuilt from
scratch: decoder-only transformers in the Llama / Falcon / MPT / GPT-2
families, position-ID-aware attention, growable KV caches with buffered
concatenation, and instrumented generation loops. Everything Prompt Cache
needs, nothing it doesn't.
"""

from repro.llm.config import (
    ModelConfig,
    PAPER_MODELS,
    paper_config,
    small_config,
    tiny_config,
)
from repro.llm.kv import KVCache, LayerKV, ModuleKV, buffered_concat
from repro.llm.paged import (
    PAGE_TOKENS,
    PagePool,
    PagedKVCache,
    PagedLayerKV,
    shared_batch_caches,
)
from repro.llm.models import TransformerModel, build_model
from repro.llm.generation import (
    GenerationResult,
    decode_loop,
    generate,
    generate_batch,
    generate_no_cache,
    prefill,
)
from repro.llm.sampling import GreedySampler, TemperatureSampler
from repro.llm.weights import init_params, load_params, param_count, save_params

__all__ = [
    "ModelConfig",
    "PAPER_MODELS",
    "paper_config",
    "small_config",
    "tiny_config",
    "KVCache",
    "LayerKV",
    "ModuleKV",
    "buffered_concat",
    "PagedKVCache",
    "PagedLayerKV",
    "PagePool",
    "PAGE_TOKENS",
    "shared_batch_caches",
    "TransformerModel",
    "build_model",
    "GenerationResult",
    "decode_loop",
    "generate",
    "generate_batch",
    "generate_no_cache",
    "prefill",
    "GreedySampler",
    "TemperatureSampler",
    "init_params",
    "load_params",
    "param_count",
    "save_params",
]
