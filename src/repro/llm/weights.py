"""Deterministic parameter initialization and (de)serialization.

The paper reuses pretrained checkpoints; offline we substitute seeded random
initialization (GPT-2-style: normal(0, 0.02), residual projections scaled by
``1/sqrt(2 * n_layers)``). Latency and memory results depend only on shapes;
for accuracy experiments the training substrate (:mod:`repro.llm.train`)
turns these random weights into models that genuinely solve the synthetic
tasks.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.llm.config import ModelConfig
from repro.llm.layers import DTYPE


def init_params(config: ModelConfig, seed: int = 0) -> dict[str, np.ndarray]:
    """Seeded random parameters for ``config``; same seed, same weights."""
    rng = np.random.default_rng(seed)
    std = 0.02
    residual_std = std / np.sqrt(2.0 * config.n_layers)

    def normal(shape: tuple[int, ...], scale: float = std) -> np.ndarray:
        return rng.normal(0.0, scale, size=shape).astype(DTYPE)

    d, ff = config.d_model, config.d_ff
    kv_dim = config.kv_dim
    params: dict[str, np.ndarray] = {
        "embed.weight": normal((config.vocab_size, d)),
        "final_norm.weight": np.ones(d, dtype=DTYPE),
    }
    if config.norm == "layernorm":
        params["final_norm.bias"] = np.zeros(d, dtype=DTYPE)
    if config.positional == "learned":
        params["pos.weight"] = normal((config.max_position, d))

    for i in range(config.n_layers):
        prefix = f"layers.{i}"
        params[f"{prefix}.attn_norm.weight"] = np.ones(d, dtype=DTYPE)
        if config.norm == "layernorm":
            params[f"{prefix}.attn_norm.bias"] = np.zeros(d, dtype=DTYPE)
        params[f"{prefix}.attn.wq"] = normal((d, d))
        params[f"{prefix}.attn.wk"] = normal((kv_dim, d))
        params[f"{prefix}.attn.wv"] = normal((kv_dim, d))
        params[f"{prefix}.attn.wo"] = normal((d, d), residual_std)
        if config.attn_bias:
            params[f"{prefix}.attn.bq"] = np.zeros(d, dtype=DTYPE)
            params[f"{prefix}.attn.bk"] = np.zeros(kv_dim, dtype=DTYPE)
            params[f"{prefix}.attn.bv"] = np.zeros(kv_dim, dtype=DTYPE)
            params[f"{prefix}.attn.bo"] = np.zeros(d, dtype=DTYPE)

        if not config.parallel_block:
            params[f"{prefix}.mlp_norm.weight"] = np.ones(d, dtype=DTYPE)
            if config.norm == "layernorm":
                params[f"{prefix}.mlp_norm.bias"] = np.zeros(d, dtype=DTYPE)
        if config.mlp == "swiglu":
            params[f"{prefix}.mlp.gate"] = normal((ff, d))
            params[f"{prefix}.mlp.up"] = normal((ff, d))
            params[f"{prefix}.mlp.down"] = normal((d, ff), residual_std)
        else:
            params[f"{prefix}.mlp.up"] = normal((ff, d))
            params[f"{prefix}.mlp.down"] = normal((d, ff), residual_std)
            if config.attn_bias:
                params[f"{prefix}.mlp.up_bias"] = np.zeros(ff, dtype=DTYPE)
                params[f"{prefix}.mlp.down_bias"] = np.zeros(d, dtype=DTYPE)

    return params


def param_count(params: dict[str, np.ndarray]) -> int:
    return sum(int(p.size) for p in params.values())


def save_params(params: dict[str, np.ndarray], path: str | Path) -> None:
    np.savez_compressed(Path(path), **params)


def load_params(path: str | Path) -> dict[str, np.ndarray]:
    with np.load(Path(path)) as data:
        return {name: data[name] for name in data.files}
