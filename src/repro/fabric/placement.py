"""Cost-model placement: promote/demote/drop decisions per module.

The placement engine keeps a small demand ledger — per-key hit counts and
an EWMA of inter-arrival gaps — and turns tier moves into an expected-value
question: a move is worth making when the per-fetch saving times the hits
expected inside the planning horizon exceeds the one-time move cost.

    benefit = (cost(src) - cost(dst)) × expected_hits(horizon)
    promote ⇔ benefit > move_cost

Demotion asks the mirror question on eviction: a capacity victim that is
*snapshot-backed* and cold is dropped outright (restoring it from the
mapped snapshot later is cheaper than holding DRAM now), while hot or
unbacked victims keep the classic demote-to-DRAM path.

All ledger state lives under its own ``fabric.placement`` ordered lock,
declared after ``store`` so fetch paths may consult placement while
holding the store lock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.locks import ordered_lock
from repro.fabric.costs import TIER_CPU, TIER_GPU, TierCostModel


@dataclass
class KeyDemand:
    """Observed demand for one cache key."""

    hits: int = 0
    last_seen: float = 0.0
    interarrival_s: float | None = None  # EWMA of gaps between hits


@dataclass
class PlacementStats:
    promotions: int = 0
    demotions: int = 0
    drops: int = 0
    holds: int = 0  # hit on the slow tier judged not worth promoting


class PlacementEngine:
    """Ranks tiers per module and decides moves on hits and evictions."""

    def __init__(
        self,
        cost_model: TierCostModel | None = None,
        *,
        horizon_s: float = 2.0,
        cold_factor: float = 4.0,
        max_tracked: int = 4096,
        alpha: float = 0.25,
    ) -> None:
        self.cost_model = cost_model or TierCostModel()
        # How far ahead the expected-hits projection looks; also the
        # prefetcher's lead window.
        self.horizon_s = horizon_s
        # An entry is "cold" when its expected gap exceeds
        # ``cold_factor × horizon_s`` — the threshold for drop-not-demote.
        self.cold_factor = cold_factor
        self.max_tracked = max_tracked
        self.alpha = alpha
        self._lock = ordered_lock("fabric.placement", after=("store",))
        self._demand: dict = {}  # guarded-by: _lock
        self.stats = PlacementStats()  # guarded-by: _lock

    # ------------------------------------------------------------------
    # demand ledger

    def record_demand(self, key, now: float) -> None:
        """Fold one request for ``key`` at time ``now`` into the ledger."""
        with self._lock:
            demand = self._demand.get(key)
            if demand is None:
                if len(self._demand) >= self.max_tracked:
                    self._evict_coldest_locked(now)
                demand = self._demand[key] = KeyDemand()
            if demand.hits > 0:
                gap = max(now - demand.last_seen, 0.0)
                if demand.interarrival_s is None:
                    demand.interarrival_s = gap
                else:
                    demand.interarrival_s += self.alpha * (gap - demand.interarrival_s)
            demand.hits += 1
            demand.last_seen = now

    def _evict_coldest_locked(self, now: float) -> None:
        # Re-entrant: always called with fabric.placement already held.
        with self._lock:
            coldest = max(
                self._demand, key=lambda k: now - self._demand[k].last_seen
            )
            del self._demand[coldest]

    def demand_for(self, key) -> KeyDemand | None:
        with self._lock:
            demand = self._demand.get(key)
            if demand is None:
                return None
            return KeyDemand(
                hits=demand.hits,
                last_seen=demand.last_seen,
                interarrival_s=demand.interarrival_s,
            )

    def tracked_keys(self) -> list:
        with self._lock:
            return list(self._demand)

    def expected_hits(self, key, now: float) -> float:
        """Hits expected for ``key`` inside the planning horizon."""
        with self._lock:
            demand = self._demand.get(key)
            if demand is None:
                return 0.0
            return self._expected_hits_locked(demand, now)

    def _expected_hits_locked(self, demand: KeyDemand, now: float) -> float:
        # Re-entrant: always called with fabric.placement already held.
        gap = demand.interarrival_s
        if gap is None or gap <= 0:
            # One observation: assume the horizon holds one more hit.
            return 1.0
        idle = max(now - demand.last_seen, 0.0)
        if idle > self.cold_factor * max(gap, self.horizon_s):
            return 0.0  # pattern has gone cold; don't extrapolate it
        return self.horizon_s / gap

    # ------------------------------------------------------------------
    # decisions

    def should_promote(
        self, key, nbytes: int, now: float, src_tier: str = TIER_CPU,
        dst_tier: str = TIER_GPU,
    ) -> bool:
        """Is moving ``key`` from ``src_tier`` to ``dst_tier`` worth it now?"""
        cost = self.cost_model
        saving = cost.fetch_cost_s(src_tier, nbytes) - cost.fetch_cost_s(
            dst_tier, nbytes
        )
        if saving <= 0:
            return False
        move_cost = cost.fetch_cost_s(src_tier, nbytes)  # the move pays one src read
        with self._lock:
            demand = self._demand.get(key)
            hits = self._expected_hits_locked(demand, now) if demand else 0.0
            worth = saving * hits > move_cost
            if worth:
                self.stats.promotions += 1
            else:
                self.stats.holds += 1
            return worth

    def should_drop(self, key, nbytes: int, now: float, snapshot_backed: bool) -> bool:
        """On capacity eviction: drop instead of demoting to DRAM?

        Only snapshot-backed entries are droppable — their bytes survive in
        the mapped snapshot and page back in at MMAP_PAGEIN rate; an
        unbacked victim would pay a full re-encode, so it always demotes.
        A backed entry is dropped when it is cold (no expected hits inside
        the horizon).
        """
        if not snapshot_backed:
            with self._lock:
                self.stats.demotions += 1
            return False
        with self._lock:
            demand = self._demand.get(key)
            hits = self._expected_hits_locked(demand, now) if demand else 0.0
            drop = hits <= 0.0
            if drop:
                self.stats.drops += 1
            else:
                self.stats.demotions += 1
            return drop

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "tracked_keys": len(self._demand),
                "promotions": self.stats.promotions,
                "demotions": self.stats.demotions,
                "drops": self.stats.drops,
                "holds": self.stats.holds,
                "horizon_s": self.horizon_s,
            }
