"""Per-tier fetch cost models for the cache fabric.

The fabric sees five ways to materialize a module's KV, ordered here from
cheapest to most expensive in the common case:

- ``gpu``   — already resident in the HBM-sim tier (device-local copy).
- ``cpu``   — resident in host DRAM (host-to-device copy).
- ``snapshot`` — mapped v2 snapshot on disk (page-in at MMAP_PAGEIN rate
  plus the sparse-digest probe).
- ``peer``  — a cluster peer holds it (one RTT plus wire transfer).
- ``reencode`` — nobody holds it; a full prefill of the module text.

The first three are priced straight off the shared ``hw.transfer`` route
table; peer RTT and re-encode throughput are *measured* online (EWMA over
live observations) because they depend on the deployment, not the host.
All costs come back in seconds, so placement decisions reduce to plain
arithmetic on a single unit.
"""

from __future__ import annotations

from repro.hw.transfer import Route, copy_latency

TIER_GPU = "gpu"
TIER_CPU = "cpu"
TIER_SNAPSHOT = "snapshot"
TIER_PEER = "peer"
TIER_REENCODE = "reencode"

# Canonical cold-to-hot ordering of the fabric hierarchy.
TIER_ORDER = (TIER_GPU, TIER_CPU, TIER_SNAPSHOT, TIER_PEER, TIER_REENCODE)

_TIER_ROUTE = {
    TIER_GPU: Route.DEVICE_TO_DEVICE,
    TIER_CPU: Route.HOST_TO_DEVICE,
    TIER_SNAPSHOT: Route.MMAP_PAGEIN,
    TIER_PEER: Route.PEER_NET,
}


class TierCostModel:
    """Seconds-to-fetch estimates per tier, refined by live observations.

    ``peer_rtt_s`` and ``reencode_s_per_token`` start at conservative
    priors and converge by EWMA as the store observes real peer fetches
    and re-encodes. Updates are plain float stores (GIL-atomic); readers
    may see a value one observation stale, which placement tolerates.
    """

    def __init__(
        self,
        *,
        peer_rtt_s: float = 2e-3,
        reencode_s_per_token: float = 1e-3,
        alpha: float = 0.25,
    ) -> None:
        self.peer_rtt_s = peer_rtt_s
        self.reencode_s_per_token = reencode_s_per_token
        self.alpha = alpha
        self.peer_observations = 0
        self.reencode_observations = 0

    def observe_peer_rtt(self, seconds: float) -> None:
        """Fold one measured peer fetch round-trip into the estimate."""
        if seconds < 0:
            return
        self.peer_rtt_s += self.alpha * (seconds - self.peer_rtt_s)
        self.peer_observations += 1

    def observe_reencode(self, tokens: int, seconds: float) -> None:
        """Fold one measured module re-encode into the per-token rate."""
        if tokens <= 0 or seconds < 0:
            return
        rate = seconds / tokens
        self.reencode_s_per_token += self.alpha * (rate - self.reencode_s_per_token)
        self.reencode_observations += 1

    def fetch_cost_s(self, tier: str, nbytes: int, tokens: int = 0) -> float:
        """Estimated seconds to materialize ``nbytes`` of KV from ``tier``.

        ``tokens`` is only consulted for the re-encode tier, whose cost is
        compute-bound (per token), not byte-bound.
        """
        if tier == TIER_REENCODE:
            return max(tokens, 1) * self.reencode_s_per_token
        if tier == TIER_PEER:
            return self.peer_rtt_s + copy_latency(nbytes, Route.PEER_NET)
        route = _TIER_ROUTE.get(tier)
        if route is None:
            raise KeyError(f"unknown fabric tier {tier!r}; expected one of {TIER_ORDER}")
        return copy_latency(nbytes, route)

    def rank_tiers(
        self, nbytes: int, tokens: int = 0, tiers: tuple[str, ...] = TIER_ORDER
    ) -> list[tuple[str, float]]:
        """``(tier, cost_s)`` pairs for ``tiers``, cheapest first."""
        ranked = [(tier, self.fetch_cost_s(tier, nbytes, tokens)) for tier in tiers]
        ranked.sort(key=lambda pair: pair[1])
        return ranked

    def snapshot(self) -> dict:
        return {
            "peer_rtt_s": self.peer_rtt_s,
            "reencode_s_per_token": self.reencode_s_per_token,
            "peer_observations": self.peer_observations,
            "reencode_observations": self.reencode_observations,
        }


def analytic_cost_model(config, dev, typical_module_tokens: int = 512) -> TierCostModel:
    """Seed a cost model from the analytic TTFT model instead of priors.

    Uses ``baseline_ttft`` (a module re-encode *is* a prefill of its text)
    to derive the starting per-token re-encode rate for this model/device
    pair; live observations still refine it.
    """
    from repro.hw.latency import baseline_ttft

    total_s = baseline_ttft(config, typical_module_tokens, dev).total_s
    return TierCostModel(reencode_s_per_token=total_s / typical_module_tokens)
