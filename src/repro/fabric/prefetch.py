"""Predictive prefetch: budgeted up-tier pulls ahead of demand.

The prefetcher answers one question per maintenance tick: *which modules
should be pulled up a tier right now?* Its inputs are the placement
engine's live demand ledger (per-key inter-arrival EWMAs mined from the
hit stream) plus optional per-schema priors mined from a serving trace
(:func:`repro.serving.traces.schema_interarrivals`) — the priors cover
keys that have been seen too few times to carry their own estimate.

A key is planned when its next predicted arrival lands inside the lead
window and it is not already resident in a fast tier. Every planned pull
is charged against a bytes/s token bucket, so a burst of predictions can
never flood the memory bus the decode loop is using — the scheduler calls
``maintenance`` only on spare-capacity iterations, and the budget bounds
the damage even then.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.placement import PlacementEngine


class ByteBudget:
    """Token bucket in bytes: refills at ``bytes_per_s``, capped at burst."""

    def __init__(
        self, bytes_per_s: float, *, burst_bytes: float | None = None, clock=None
    ) -> None:
        if bytes_per_s <= 0:
            raise ValueError(f"bytes_per_s must be positive, got {bytes_per_s!r}")
        self.bytes_per_s = bytes_per_s
        self.burst_bytes = burst_bytes if burst_bytes is not None else bytes_per_s
        self._available = self.burst_bytes
        self._last_refill: float | None = None
        self.granted_bytes = 0
        self.denied = 0

    def _refill(self, now: float) -> None:
        if self._last_refill is not None:
            elapsed = max(now - self._last_refill, 0.0)
            self._available = min(
                self.burst_bytes, self._available + elapsed * self.bytes_per_s
            )
        self._last_refill = now

    def take(self, nbytes: int, now: float) -> bool:
        """Charge ``nbytes`` against the bucket; False means over budget."""
        self._refill(now)
        if nbytes > self._available:
            self.denied += 1
            return False
        self._available -= nbytes
        self.granted_bytes += nbytes
        return True

    def available(self, now: float) -> float:
        self._refill(now)
        return self._available


@dataclass(frozen=True)
class PrefetchAction:
    """One planned up-tier pull."""

    key: object  # CacheKey
    source: str  # "snapshot" or "peer"
    nbytes: int


class PredictivePrefetcher:
    """Plans budgeted up-tier pulls from demand estimates.

    The store owns tier state; the prefetcher is pure planning. Each
    ``plan`` call receives the current candidate set — keys *not* resident
    in a fast tier, with where they can be pulled from and how big they
    are — and returns the subset worth pulling now, budget permitting.
    """

    def __init__(
        self,
        placement: PlacementEngine,
        *,
        bytes_per_s: float = 64e6,
        lead_s: float | None = None,
    ) -> None:
        self.placement = placement
        self.budget = ByteBudget(bytes_per_s)
        # How far before the predicted arrival a pull may start; defaults
        # to the placement horizon so the two stay consistent.
        self.lead_s = lead_s if lead_s is not None else placement.horizon_s
        self.schema_priors: dict[str, float] = {}
        self.planned = 0
        self.skipped_budget = 0
        self.skipped_cold = 0

    def seed_interarrival(self, schema: str, seconds: float) -> None:
        """Install a per-schema inter-arrival prior (e.g. mined offline)."""
        if seconds > 0:
            self.schema_priors[schema] = seconds

    def seed_from_trace(self, trace) -> None:
        """Mine per-schema priors from a list of ``TraceRequest``."""
        from repro.serving.traces import schema_interarrivals

        for schema, gap in schema_interarrivals(trace).items():
            self.seed_interarrival(schema, gap)

    def _predicted_gap(self, key) -> float | None:
        demand = self.placement.demand_for(key)
        if demand is not None and demand.interarrival_s:
            return demand.interarrival_s
        return self.schema_priors.get(key.schema)

    def due(self, key, now: float) -> bool:
        """Is ``key``'s next predicted arrival inside the lead window?"""
        gap = self._predicted_gap(key)
        if gap is None:
            return False
        demand = self.placement.demand_for(key)
        last_seen = demand.last_seen if demand is not None else now
        next_arrival = last_seen + gap
        # Stale patterns don't extrapolate: if several gaps have already
        # passed silently, the schema's cadence changed.
        if now - last_seen > self.placement.cold_factor * gap:
            return False
        return next_arrival - now <= self.lead_s

    def plan(self, candidates: dict, now: float) -> list[PrefetchAction]:
        """Pick budgeted pulls from ``{key: (source, nbytes)}`` candidates.

        Candidates are considered most-demanded first (shortest predicted
        gap), so when the budget runs out it is the marginal keys that
        wait for the next tick.
        """
        due = []
        for key, (source, nbytes) in candidates.items():
            if not self.due(key, now):
                self.skipped_cold += 1
                continue
            gap = self._predicted_gap(key) or float("inf")
            due.append((gap, key, source, nbytes))
        due.sort(key=lambda item: item[0])
        actions: list[PrefetchAction] = []
        for _, key, source, nbytes in due:
            if not self.budget.take(nbytes, now):
                self.skipped_budget += 1
                continue
            actions.append(PrefetchAction(key=key, source=source, nbytes=nbytes))
            self.planned += 1
        return actions

    def snapshot(self) -> dict:
        return {
            "planned": self.planned,
            "skipped_budget": self.skipped_budget,
            "skipped_cold": self.skipped_cold,
            "budget_bytes_per_s": self.budget.bytes_per_s,
            "budget_granted_bytes": self.budget.granted_bytes,
            "budget_denied": self.budget.denied,
            "schema_priors": dict(self.schema_priors),
        }
