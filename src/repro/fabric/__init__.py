"""repro.fabric — tiered cache fabric with placement and prefetch.

Unifies the repo's four storage planes (HBM-sim/DRAM tiers, mapped v2
snapshots, cluster peer fetch, re-encode) into one hierarchy behind the
:class:`FabricStore` facade. See ``docs/ARCHITECTURE.md`` Layer 11.
"""

from repro.fabric.costs import (
    TIER_CPU,
    TIER_GPU,
    TIER_ORDER,
    TIER_PEER,
    TIER_REENCODE,
    TIER_SNAPSHOT,
    TierCostModel,
    analytic_cost_model,
)
from repro.fabric.placement import PlacementEngine
from repro.fabric.prefetch import ByteBudget, PredictivePrefetcher, PrefetchAction
from repro.fabric.store import FabricStore

__all__ = [
    "ByteBudget",
    "FabricStore",
    "PlacementEngine",
    "PredictivePrefetcher",
    "PrefetchAction",
    "TIER_CPU",
    "TIER_GPU",
    "TIER_ORDER",
    "TIER_PEER",
    "TIER_REENCODE",
    "TIER_SNAPSHOT",
    "TierCostModel",
    "analytic_cost_model",
]
