"""FabricStore: the five-tier cache fabric behind one store facade.

``FabricStore`` extends the two-tier :class:`ModuleCacheStore` with the
rest of the storage hierarchy the paper leaves to future work (§storage
hierarchy): a mapped v2 snapshot as a third, disk-backed tier; the
cluster peer plane (the existing miss-fetcher hook) as a fourth; and
re-encode priced as the fifth, most expensive "tier" rather than an
out-of-band fallback. A ``fetch`` walks them hot-to-cold:

    gpu hit → cpu hit (cost-model promote) → snapshot page-in →
    peer fetch → None (caller re-encodes; the cost is observed)

Because it *is* a ``ModuleCacheStore``, everything that consumes the
store today — ``PromptCache``, ``ClusterWorker``, snapshot save/load,
metrics wiring — works unchanged; the fabric only changes what a full
miss means. Placement (promote/demote/drop) and predictive prefetch are
delegated to :mod:`repro.fabric.placement` and
:mod:`repro.fabric.prefetch`; the periodic ``maintenance`` entry point is
driven by the live server's spare-capacity iterations so prefetch never
competes with decode.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.cache.persist import (
    catalog_entry_nbytes,
    load_catalog_entry,
    snapshot_catalog,
)
from repro.cache.storage import (
    CacheKey,
    FetchResult,
    ModuleCacheStore,
    TierStats,
)
from repro.fabric.costs import TIER_CPU, TIER_GPU, TierCostModel
from repro.fabric.placement import PlacementEngine
from repro.fabric.prefetch import PredictivePrefetcher
from repro.hw.allocator import CapacityError


class FabricStore(ModuleCacheStore):
    """Tiered cache fabric: DRAM tiers + snapshot + peers + re-encode."""

    def __init__(
        self,
        gpu_capacity_bytes: int | None = None,
        cpu_capacity_bytes: int | None = None,
        *,
        snapshot_dir: str | Path | None = None,
        cost_model: TierCostModel | None = None,
        placement: PlacementEngine | None = None,
        prefetcher: PredictivePrefetcher | None = None,
        prefetch_bytes_per_s: float = 64e6,
        horizon_s: float = 2.0,
        peer_prefetch=None,
        clock=time.monotonic,
        **store_kwargs,
    ) -> None:
        super().__init__(
            gpu_capacity_bytes, cpu_capacity_bytes, clock=clock, **store_kwargs
        )
        self.clock = clock
        self.cost_model = cost_model or TierCostModel()
        self.placement = placement or PlacementEngine(
            self.cost_model, horizon_s=horizon_s
        )
        self.prefetcher = prefetcher or PredictivePrefetcher(
            self.placement, bytes_per_s=prefetch_bytes_per_s
        )
        # Async peer pull hook: ``fn(key) -> bool`` (issued?). The cluster
        # worker wires this to its event-loop peer fetch; standalone
        # fabrics leave it None and prefetch only from the snapshot.
        self.peer_prefetch = peer_prefetch
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir is not None else None
        self._catalog: dict[CacheKey, dict] = {}  # guarded-by: _lock
        if self.snapshot_dir is not None and (self.snapshot_dir / "index.json").exists():
            catalog = snapshot_catalog(self.snapshot_dir)
            with self._lock:
                self._catalog = catalog
        # Last known KV size per key, for budgeting pulls of entries that
        # are no longer resident anywhere local.
        self._size_hints: dict[CacheKey, int] = {}  # guarded-by: _lock
        # Snapshot-tier ledger: hits = successful page-ins, misses =
        # catalog miss or corrupt payload.
        self.snapshot_stats = TierStats()  # guarded-by: _lock
        self.reencodes = 0  # guarded-by: _lock
        self.maintenance_runs = 0  # guarded-by: _lock
        if store_kwargs.get("demote_on_evict", True):
            # Replace the unconditional demote lambda: placement now
            # decides drop-vs-demote per victim.
            self.gpu.on_evict = self._on_gpu_evict

    # ------------------------------------------------------------------
    # eviction policy: drop snapshot-backed cold victims

    def _on_gpu_evict(self, entry) -> None:
        # holds-lock: store
        key = entry.key
        with self._lock:
            self._size_hints[key] = entry.nbytes
            backed = key in self._catalog
        if self.placement.should_drop(key, entry.nbytes, self.clock(), backed):
            return  # snapshot pages it back in on demand
        self.cpu.put(key, entry.kv, pinned=entry.pinned)

    # ------------------------------------------------------------------
    # the tier walk

    def fetch(self, key: CacheKey) -> FetchResult | None:
        now = self.clock()
        self.placement.record_demand(key, now)
        with self._lock:
            entry = self.gpu.get(key)
            if entry is not None:
                self._size_hints[key] = entry.nbytes
                return FetchResult(entry=entry, tier="gpu", source="gpu")
            entry = self.cpu.get(key)
            if entry is not None:
                self._size_hints[key] = entry.nbytes
        if entry is not None:
            # DRAM hit: placement decides whether the expected demand
            # justifies paying the promotion copy now.
            if self.placement.should_promote(
                key, entry.nbytes, now, src_tier=TIER_CPU, dst_tier=TIER_GPU
            ):
                self.prefetch([key])
            return FetchResult(entry=entry, tier="cpu", source="cpu")
        # Snapshot tier: map the entry's payload in from disk.
        kv = self._page_in(key)
        if kv is not None:
            return self._install(key, kv, source="snapshot")
        # Peer tier: the cluster miss-fetcher, with its RTT observed so
        # the cost model tracks the live deployment.
        started = time.perf_counter()
        kv = self._run_miss_fetcher(key)
        if kv is not None:
            self.cost_model.observe_peer_rtt(time.perf_counter() - started)
            return self._install(key, kv, source="peer")
        return None  # re-encode upstream; observe_reencode prices it

    def _install(self, key: CacheKey, kv, *, source: str) -> FetchResult | None:
        self.put(key, kv, tier="gpu")
        with self._lock:
            for tier in (self.gpu, self.cpu):
                entry = tier.peek(key)
                if entry is not None:
                    self._size_hints[key] = entry.nbytes
                    return FetchResult(entry=entry, tier=tier.name, source=source)
        return None  # evicted in the gap; treat as a miss

    def _page_in(self, key: CacheKey):
        """Materialize ``key`` from the mapped snapshot, if cataloged.

        Runs outside the store lock — it faults pages and hashes the
        sparse digest. A corrupt payload drops out of the catalog so the
        fabric stops retrying it."""
        with self._lock:
            record = self._catalog.get(key)
        if record is None:
            return None
        kv = load_catalog_entry(self.snapshot_dir, record)
        with self._lock:
            if kv is None:
                self._catalog.pop(key, None)
                self.snapshot_stats.misses += 1
            else:
                self.snapshot_stats.hits += 1
        return kv

    def snapshot_backed(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._catalog

    def observe_reencode(self, key: CacheKey, tokens: int, seconds: float) -> None:
        """Record a measured re-encode (the most expensive tier's cost)."""
        self.cost_model.observe_reencode(tokens, seconds)
        with self._lock:
            self.reencodes += 1

    # ------------------------------------------------------------------
    # maintenance: TTL sweep + predictive prefetch

    def _candidates(self) -> dict[CacheKey, tuple[str, int]]:
        """Keys with live demand that are *not* resident locally, mapped to
        where they can be pulled from and their size."""
        candidates: dict[CacheKey, tuple[str, int]] = {}
        peer_ok = self.peer_prefetch is not None
        for key in self.placement.tracked_keys():
            with self._lock:
                if self.gpu.peek(key) is not None or self.cpu.peek(key) is not None:
                    continue
                record = self._catalog.get(key)
                hint = self._size_hints.get(key)
            if record is not None:
                candidates[key] = ("snapshot", catalog_entry_nbytes(record))
            elif peer_ok and hint is not None:
                candidates[key] = ("peer", hint)
        return candidates

    def maintenance(self, now: float | None = None) -> dict:
        """One idle-time tick: sweep expired entries, then issue budgeted
        prefetch pulls for keys predicted to arrive soon. Called from the
        live server's spare-capacity scheduler iterations (never from the
        request path)."""
        now = self.clock() if now is None else now
        swept = self.sweep_expired()
        actions = self.prefetcher.plan(self._candidates(), now)
        pulled = issued = 0
        for action in actions:
            if action.source == "snapshot":
                kv = self._page_in(action.key)
                if kv is None:
                    continue
                try:
                    # Land prefetches in DRAM; the promote path moves them
                    # up on first demand if placement judges it worthwhile.
                    self.cpu.put(action.key, kv)
                except CapacityError:
                    continue  # every resident entry outranks the prediction
                pulled += 1
            elif action.source == "peer":
                if self.peer_prefetch is not None and self.peer_prefetch(action.key):
                    issued += 1
        with self._lock:
            self.maintenance_runs += 1
        return {"swept": swept, "prefetched": pulled, "peer_issued": issued}

    # ------------------------------------------------------------------
    # observability

    def residency_tags(self, limit: int = 256) -> list[str]:
        """Module tags this worker can serve without re-encoding: resident
        entries first (both DRAM tiers), then snapshot-mapped ones, capped
        at ``limit`` for the heartbeat payload."""
        tags: list[str] = []
        seen: set[str] = set()
        with self._lock:
            key_groups = (self.gpu.keys(), self.cpu.keys(), list(self._catalog))
        for keys in key_groups:
            for key in keys:
                tag = key.tag()
                if tag in seen:
                    continue
                seen.add(tag)
                tags.append(tag)
                if len(tags) >= limit:
                    return tags
        return tags

    def fabric_snapshot(self) -> dict:
        """One structured view of the whole fabric, for CLI/metrics."""
        with self._lock:
            tiers = {
                "gpu": vars(self.gpu.stats).copy(),
                "cpu": vars(self.cpu.stats).copy(),
                "snapshot": vars(self.snapshot_stats).copy(),
                "peer": vars(self.fetch_stats).copy(),
            }
            catalog_size = len(self._catalog)
            reencodes = self.reencodes
            maintenance_runs = self.maintenance_runs
        return {
            "tiers": tiers,
            "catalog_entries": catalog_size,
            "reencodes": reencodes,
            "maintenance_runs": maintenance_runs,
            "costs": self.cost_model.snapshot(),
            "placement": self.placement.snapshot(),
            "prefetch": self.prefetcher.snapshot(),
        }
