"""Prompt Markup Language: schemas, prompts, chat templates, compiler.

The user-facing interface of Prompt Cache (paper §3.2). Schemas declare
reusable prompt modules; prompts derive from schemas by importing modules,
supplying parameter arguments, and adding new text. The Python-to-PML
compiler lets prompt programs skip hand-written markup entirely.
"""

from repro.pml.ast import (
    ImportNode,
    ModuleNode,
    ParamNode,
    PromptNode,
    RoleNode,
    SchemaNode,
    TextNode,
    UnionNode,
)
from repro.pml.chat import (
    ChatTemplate,
    FALCON_TEMPLATE,
    LLAMA2_TEMPLATE,
    MPT_TEMPLATE,
    PLAIN_TEMPLATE,
    TEMPLATES,
    resolve_roles,
    template_for_architecture,
)
from repro.pml.compiler import Param, PromptFunction, emit, prompt_function
from repro.pml.errors import ParseError, PMLError, SchemaMismatchError, ValidationError
from repro.pml.lint import Diagnostic, lint_schema
from repro.pml.parser import parse_prompt, parse_schema
from repro.pml.prompt import NewText, ResolvedPrompt, Selection, resolve
from repro.pml.schema import Schema

__all__ = [
    "Schema", "resolve", "ResolvedPrompt", "Selection", "NewText",
    "parse_schema", "parse_prompt",
    "TextNode", "ParamNode", "ModuleNode", "UnionNode", "RoleNode",
    "SchemaNode", "PromptNode", "ImportNode",
    "ChatTemplate", "TEMPLATES", "LLAMA2_TEMPLATE", "MPT_TEMPLATE",
    "FALCON_TEMPLATE", "PLAIN_TEMPLATE", "resolve_roles",
    "template_for_architecture",
    "Param", "PromptFunction", "emit", "prompt_function",
    "PMLError", "ParseError", "ValidationError", "SchemaMismatchError",
    "Diagnostic", "lint_schema",
]
