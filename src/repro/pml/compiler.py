"""Python-to-PML compiler (paper §3.2.4).

Prompt programs written as plain Python functions compile into PML schemas,
so users never hand-write markup:

- ``emit("...")`` with a string literal → schema text (anonymous module
  content inside whatever construct encloses it);
- ``emit(arg)`` where ``arg`` is a ``Param``-annotated function argument →
  a ``<param>`` placeholder;
- ``if cond: ...`` → a ``<module>`` (included when the condition holds);
- ``if/elif/else`` chains → a ``<union>`` of modules (choose-one);
- a call to another ``@prompt_function`` → a nested ``<module>``;
- the function docstring → leading schema text.

The same function also *builds prompts*: calling
``fn.build_prompt(dest="miami", duration="3 days")`` re-evaluates the
branch conditions against the given arguments and emits the matching
``<prompt>`` document, supplying parameter values — which is how a prompt
program reuses its cached modules at runtime.

Example::

    @prompt_function
    def travel(dest, duration: Param(8)):
        \"\"\"You are a travel planner.\"\"\"
        if dest == "miami":
            emit("Miami: beaches, nightlife, art deco.")
        elif dest == "paris":
            emit("Paris: museums, cafes, architecture.")
        emit("Plan a trip lasting ")
        emit(duration)

    schema_pml = travel.to_pml()
    prompt_pml = travel.build_prompt(dest="paris", duration="3 days")
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from dataclasses import dataclass

from repro.pml.ast import ModuleNode, ParamNode, SchemaNode, TextNode, UnionNode
from repro.pml.errors import ValidationError
from repro.pml.schema import Schema


@dataclass(frozen=True)
class Param:
    """Annotation marking a function argument as a PML parameter with a
    maximum token length (the ``len`` attribute, paper §3.2.2)."""

    length: int


def emit(_text_or_param) -> None:
    """Marker function; only meaningful inside ``@prompt_function`` bodies."""
    raise RuntimeError(
        "emit() is a compile-time marker — call schema.to_pml() / "
        "build_prompt() on the decorated function instead of invoking it"
    )


def _slug(value: object) -> str:
    text = re.sub(r"[^A-Za-z0-9]+", "-", str(value)).strip("-").lower()
    return text or "value"


@dataclass
class _Branch:
    """One compiled conditional branch: a module plus its guard."""

    module: ModuleNode
    # Compiled expression evaluated against build_prompt kwargs; None for
    # a bare `else` (selected when no earlier branch matched).
    condition: object | None
    source: str


class PromptFunction:
    """A compiled prompt program: schema + prompt builder."""

    def __init__(self, fn, name: str | None = None) -> None:
        self.fn = fn
        self.name = name or fn.__name__.replace("_", "-")
        self._params = self._collect_params(fn)
        self._branches: list[list[_Branch]] = []  # one list per if-chain
        self._nested: list[PromptFunction] = []
        self._slots: list[ModuleNode] = []  # implicit modules for top-level params
        self._param_home: dict[str, str | None] = {}  # param -> module name
        root_children = self._compile(fn)
        self.schema = Schema.from_node(
            SchemaNode(name=self.name, children=root_children)
        )

    # -- compilation -----------------------------------------------------------

    @staticmethod
    def _collect_params(fn) -> dict[str, Param]:
        params: dict[str, Param] = {}
        signature = inspect.signature(fn)
        for arg_name, parameter in signature.parameters.items():
            annotation = parameter.annotation
            if isinstance(annotation, str):
                # `from __future__ import annotations` stringifies them.
                try:
                    annotation = eval(  # noqa: S307 - trusted module source
                        annotation, fn.__globals__, {"Param": Param}
                    )
                except Exception:
                    continue
            if isinstance(annotation, Param):
                params[arg_name] = annotation
        return params

    def _compile(self, fn) -> list:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
        fn_def = tree.body[0]
        if not isinstance(fn_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
            raise ValidationError("@prompt_function must decorate a function")
        body = list(fn_def.body)
        children: list = []
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            children.append(TextNode(body[0].value.value))
            body = body[1:]
        children.extend(self._compile_block(body, current_module=None))
        return children

    def _compile_block(self, statements: list, current_module: str | None) -> list:
        out: list = []
        for stmt in statements:
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                out.extend(self._compile_call(stmt.value, current_module))
            elif isinstance(stmt, ast.If):
                out.append(self._compile_if(stmt, current_module))
            elif isinstance(stmt, (ast.Pass, ast.Return)):
                continue
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # stray docstring/comment-like constant
            else:
                raise ValidationError(
                    f"prompt programs support emit(), if/elif/else, and nested "
                    f"prompt-function calls; found {type(stmt).__name__} at line "
                    f"{stmt.lineno}"
                )
        return out

    def _compile_call(self, call: ast.Call, current_module: str | None) -> list:
        callee = call.func
        if isinstance(callee, ast.Name) and callee.id == "emit":
            if len(call.args) != 1:
                raise ValidationError("emit() takes exactly one argument")
            arg = call.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return [TextNode(arg.value)]
            if isinstance(arg, ast.Name) and arg.id in self._params:
                param = ParamNode(name=arg.id, length=self._params[arg.id].length)
                if current_module is None:
                    # PML requires <param> inside a <module>; wrap top-level
                    # parameters in an implicit single-param module.
                    slot = ModuleNode(name=f"{_slug(arg.id)}-slot", children=[param])
                    self._slots.append(slot)
                    self._param_home[arg.id] = slot.name
                    return [slot]
                self._param_home[arg.id] = current_module
                return [param]
            raise ValidationError(
                "emit() accepts a string literal or a Param-annotated argument"
            )
        if isinstance(callee, ast.Name):
            nested = self._lookup_prompt_function(callee.id)
            if nested is not None:
                self._nested.append(nested)
                module = ModuleNode(
                    name=nested.name,
                    children=[c for c in nested.schema.root.children],
                )
                for arg_name, home in nested._param_home.items():
                    self._param_home.setdefault(arg_name, home)
                for arg_name, p in nested._params.items():
                    self._params.setdefault(arg_name, p)
                return [module]
        raise ValidationError(
            f"unsupported call in prompt program at line {call.lineno}; only "
            "emit() and @prompt_function calls are allowed"
        )

    def _lookup_prompt_function(self, name: str) -> "PromptFunction | None":
        candidate = self.fn.__globals__.get(name)
        return candidate if isinstance(candidate, PromptFunction) else None

    def _compile_if(self, stmt: ast.If, current_module: str | None):
        branches: list[_Branch] = []
        node: ast.stmt | None = stmt
        while isinstance(node, ast.If):
            module_name = self._branch_name(node.test)
            module = ModuleNode(
                name=module_name,
                children=self._compile_block(node.body, current_module=module_name),
            )
            condition_src = ast.unparse(node.test)
            branches.append(
                _Branch(
                    module=module,
                    condition=compile(condition_src, "<prompt-program>", "eval"),
                    source=condition_src,
                )
            )
            rest = node.orelse
            if len(rest) == 1 and isinstance(rest[0], ast.If):
                node = rest[0]
            elif rest:
                else_name = f"{module_name.rsplit('-', 1)[0]}-otherwise"
                branches.append(
                    _Branch(
                        module=ModuleNode(
                            name=else_name,
                            children=self._compile_block(
                                rest, current_module=else_name
                            ),
                        ),
                        condition=None,
                        source="<else>",
                    )
                )
                node = None
            else:
                node = None
        self._branches.append(branches)
        if len(branches) == 1:
            return branches[0].module
        return UnionNode(members=[b.module for b in branches])

    def _branch_name(self, test: ast.expr) -> str:
        # `dest == "miami"` -> "dest-miami"; `flag` -> "flag"; otherwise slug
        # of the expression source.
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
        ):
            return f"{_slug(test.left.id)}-{_slug(test.comparators[0].value)}"
        if isinstance(test, ast.Name):
            return _slug(test.id)
        return _slug(ast.unparse(test))

    # -- outputs ---------------------------------------------------------------

    def to_pml(self) -> str:
        """The compiled schema as PML text."""
        return self.schema.to_pml()

    def build_prompt(self, *, extra_text: str = "", **kwargs) -> str:
        """Evaluate branch conditions against ``kwargs`` and produce the
        matching ``<prompt>`` document (imports + parameter arguments)."""
        imports: list[str] = []
        for chain in self._branches:
            chosen = self._choose_branch(chain, kwargs)
            if chosen is not None:
                imports.append(self._import_tag(chosen.module, kwargs))
        for nested in self._nested:
            imports.append(self._import_tag(nested.schema_module(), kwargs))
        for slot in self._slots:
            imports.append(self._import_tag(slot, kwargs))
        body = "".join(imports) + escape_prompt_text(extra_text)
        return f'<prompt schema="{self.name}">{body}</prompt>'

    def schema_module(self) -> ModuleNode:
        """This function viewed as a module (when nested in a caller)."""
        return ModuleNode(name=self.name, children=self.schema.root.children)

    @staticmethod
    def _choose_branch(chain: list[_Branch], kwargs: dict) -> _Branch | None:
        fallback = None
        for branch in chain:
            if branch.condition is None:
                fallback = branch
                continue
            try:
                if eval(branch.condition, {"__builtins__": {}}, dict(kwargs)):
                    return branch
            except NameError:
                continue  # argument not supplied: branch not selectable
        return fallback

    def _import_tag(self, module: ModuleNode, kwargs: dict) -> str:
        args = []
        for child in module.children:
            if isinstance(child, ParamNode) and child.name in kwargs:
                value = str(kwargs[child.name]).replace('"', "&quot;")
                args.append(f' {child.name}="{value}"')
        return f"<{module.name}{''.join(args)}/>"


def escape_prompt_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;")


def prompt_function(fn=None, *, name: str | None = None):
    """Decorator compiling a Python prompt program into a PML schema."""
    if fn is None:
        return lambda f: PromptFunction(f, name=name)
    return PromptFunction(fn, name=name)
