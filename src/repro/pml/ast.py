"""AST node types for PML schemas and prompts.

Schema side (paper §3.2): a schema is a named sequence of text, modules,
unions, parameters, and chat-role wrappers. Prompt side (§3.2.1): a prompt
names its schema, imports modules (optionally supplying parameter
arguments and selecting nested modules), and interleaves new uncached text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# Tag names with built-in meaning; modules cannot shadow them.
RESERVED_TAGS = frozenset(
    {"schema", "prompt", "module", "union", "param", "system", "user",
     "assistant", "scaffold"}
)

CHAT_ROLES = ("system", "user", "assistant")


@dataclass
class TextNode:
    """Verbatim text. In a schema: anonymous module content, always
    included. In a prompt: new, uncached text (paper Fig 2 ④)."""

    text: str


@dataclass
class ParamNode:
    """A ``<param name=... len=.../>`` placeholder inside a module.

    Encoded as ``len`` ``<unk>`` tokens whose positions are recorded for
    runtime substitution (paper §3.3).
    """

    name: str
    length: int
    # Scaffolding for buffers: a param may carry default text used when the
    # prompt supplies no argument (empty string = blank buffer).
    default: str = ""


@dataclass
class ModuleNode:
    """A reusable prompt module. ``anonymous`` modules are synthesized from
    bare schema text and are always part of every derived prompt."""

    name: str
    children: list["SchemaChild"] = field(default_factory=list)
    anonymous: bool = False


@dataclass
class UnionNode:
    """Mutually exclusive modules sharing a start position (paper §3.2.3)."""

    members: list[ModuleNode] = field(default_factory=list)


@dataclass
class RoleNode:
    """``<system>/<user>/<assistant>`` chat-template wrapper (§3.2.3)."""

    role: str
    children: list["SchemaChild"] = field(default_factory=list)


@dataclass
class SchemaNode:
    """Root of a schema document."""

    name: str
    children: list["SchemaChild"] = field(default_factory=list)
    # Names listed in <scaffold modules="a,b"/> declarations (§3.3): module
    # sets additionally encoded together to share an attention span.
    scaffolds: list[tuple[str, ...]] = field(default_factory=list)


SchemaChild = Union[TextNode, ParamNode, ModuleNode, UnionNode, RoleNode]


@dataclass
class ImportNode:
    """A module import inside a prompt: ``<miami/>`` or
    ``<trip-plan duration="3 days"><paris/></trip-plan>``."""

    name: str
    args: dict[str, str] = field(default_factory=dict)
    children: list["PromptChild"] = field(default_factory=list)


@dataclass
class PromptNode:
    """Root of a prompt document: ``<prompt schema="...">...</prompt>``."""

    schema: str
    children: list["PromptChild"] = field(default_factory=list)


PromptChild = Union[TextNode, ImportNode]


def iter_modules(children: list[SchemaChild]):
    """Yield every (possibly nested) named module under ``children``."""
    for child in children:
        if isinstance(child, ModuleNode):
            yield child
            yield from iter_modules(child.children)
        elif isinstance(child, UnionNode):
            for member in child.members:
                yield member
                yield from iter_modules(member.children)
        elif isinstance(child, RoleNode):
            yield from iter_modules(child.children)
