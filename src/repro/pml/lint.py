"""Schema linter: authoring diagnostics for PML schemas.

Schemas are written by humans (or compiled from prompt programs) and have
real performance consequences: oversized modules blow memory budgets,
single-member unions waste nothing but signal confusion, unused parameters
bloat position space, and semantically dependent modules silently lose
cross-attention (the §3.3 masking effect). The linter surfaces all of this
before any encoding happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.llm.config import ModelConfig
from repro.pml.ast import ModuleNode, ParamNode, UnionNode
from repro.pml.schema import Schema

if TYPE_CHECKING:  # real import is deferred: cache.layout imports pml
    from repro.cache.layout import SchemaLayout

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    severity: str  # one of SEVERITIES
    code: str
    message: str
    module: str | None = None

    def __str__(self) -> str:
        where = f" [{self.module}]" if self.module else ""
        return f"{self.severity}:{self.code}{where}: {self.message}"


def lint_schema(
    schema: Schema,
    tokenizer,
    model_config: ModelConfig | None = None,
    memory_budget_bytes: int | None = None,
) -> list[Diagnostic]:
    """All diagnostics for ``schema``, most severe first."""
    from repro.cache.layout import layout_schema

    layout = layout_schema(schema, tokenizer)
    diagnostics: list[Diagnostic] = []
    diagnostics += _check_position_budget(layout, model_config)
    diagnostics += _check_memory_budget(layout, model_config, memory_budget_bytes)
    diagnostics += _check_empty_modules(layout)
    diagnostics += _check_single_member_unions(schema)
    diagnostics += _check_param_slack(schema, layout)
    diagnostics += _check_tiny_modules(layout)
    order = {severity: i for i, severity in enumerate(SEVERITIES)}
    return sorted(diagnostics, key=lambda d: (order[d.severity], d.code, d.module or ""))


def _check_position_budget(layout: "SchemaLayout", config) -> list[Diagnostic]:
    if config is None:
        return []
    out = []
    if layout.total_length >= config.max_position:
        out.append(
            Diagnostic(
                "error", "position-overflow",
                f"schema needs {layout.total_length} positions but "
                f"{config.name} supports {config.max_position}",
            )
        )
    elif layout.total_length >= 0.9 * config.max_position:
        out.append(
            Diagnostic(
                "warning", "position-pressure",
                f"schema uses {layout.total_length}/{config.max_position} "
                "positions; little room for prompt text and generation",
            )
        )
    return out


def _check_memory_budget(layout, config, budget) -> list[Diagnostic]:
    if config is None:
        return []
    out = []
    total_tokens = sum(len(m.token_ids) for m in layout.modules.values())
    total_bytes = total_tokens * config.kv_bytes_per_token()
    if budget is not None and total_bytes > budget:
        out.append(
            Diagnostic(
                "error", "memory-overflow",
                f"encoding every module costs {total_bytes / 1e9:.2f} GB at "
                f"fp16, over the {budget / 1e9:.2f} GB budget",
            )
        )
    for module in layout.modules.values():
        nbytes = len(module.token_ids) * config.kv_bytes_per_token()
        if budget is not None and nbytes > budget / 2:
            out.append(
                Diagnostic(
                    "warning", "module-dominates-budget",
                    f"one module uses {nbytes / 1e9:.2f} GB, over half the budget",
                    module=module.name,
                )
            )
    return out


def _check_empty_modules(layout: "SchemaLayout") -> list[Diagnostic]:
    return [
        Diagnostic(
            "warning", "empty-module",
            "module has no tokens; importing it is a no-op", module=name,
        )
        for name, module in layout.modules.items()
        if len(module.token_ids) == 0
    ]


def _check_single_member_unions(schema: Schema) -> list[Diagnostic]:
    out = []

    def walk(children):
        for child in children:
            if isinstance(child, UnionNode):
                if len(child.members) == 1:
                    out.append(
                        Diagnostic(
                            "info", "single-member-union",
                            "a union with one member is just a module",
                            module=child.members[0].name,
                        )
                    )
                for member in child.members:
                    walk(member.children)
            elif isinstance(child, ModuleNode):
                walk(child.children)

    walk(schema.root.children)
    return out


def _check_param_slack(schema: Schema, layout: "SchemaLayout") -> list[Diagnostic]:
    """Parameters whose reserved length dwarfs their default hint."""
    out = []
    for module in layout.modules.values():
        for slot in module.params.values():
            if slot.length > 64:
                out.append(
                    Diagnostic(
                        "info", "large-param",
                        f"parameter {slot.name!r} reserves {slot.length} "
                        "positions; oversized buffers waste position space",
                        module=module.name,
                    )
                )
    return out


def _check_tiny_modules(layout: "SchemaLayout") -> list[Diagnostic]:
    """Modules so small that caching saves less than the splice overhead."""
    out = []
    for name, module in layout.modules.items():
        if module.anonymous:
            continue
        if 0 < len(module.token_ids) <= 4:
            out.append(
                Diagnostic(
                    "info", "tiny-module",
                    f"module has only {len(module.token_ids)} tokens; caching "
                    "overhead may exceed the prefill it saves",
                    module=name,
                )
            )
    return out
