"""Error types raised while parsing or validating PML documents."""

from __future__ import annotations


class PMLError(Exception):
    """Base class for all PML problems."""


class ParseError(PMLError):
    """Malformed PML markup, with source position."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ValidationError(PMLError):
    """Structurally well-formed but semantically invalid PML."""


class SchemaMismatchError(PMLError):
    """A prompt references modules/parameters its schema does not define,
    or violates the schema's structure (paper §3.4's alignment check)."""


class UnknownSchemaError(SchemaMismatchError):
    """A prompt (or maintenance call) names a schema that was never
    registered with the engine. Subclasses :class:`SchemaMismatchError` so
    existing handlers keep working.

    Carries the offending name and the registered names so callers — the
    serving runtime in particular — can reject the request with a precise
    message instead of surfacing an internal ``KeyError``.
    """

    def __init__(self, schema: str, known: list[str] | None = None) -> None:
        self.schema = schema
        self.known = sorted(known or [])
        super().__init__(
            f"schema {schema!r} is not registered; known: {self.known}"
        )
