"""LLM-specific chat templates for the PML role tags (paper §3.2.3).

Schemas use ``<system>``, ``<user>``, ``<assistant>`` instead of hard-coding
any one model's conversation format; at schema-load time the role wrappers
are compiled into the plain-text framing the target LLM was tuned on —
e.g. Llama2's ``<s>[INST] <<SYS>>...<</SYS>> ... [/INST]``.

Compiling happens *before* layout, so the framing text becomes part of the
surrounding anonymous modules and is cached like any other schema text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pml.ast import RoleNode, SchemaNode, TextNode


@dataclass(frozen=True)
class ChatTemplate:
    """Per-role framing strings for one model family."""

    name: str
    system_prefix: str
    system_suffix: str
    user_prefix: str
    user_suffix: str
    assistant_prefix: str
    assistant_suffix: str

    def framing(self, role: str) -> tuple[str, str]:
        return {
            "system": (self.system_prefix, self.system_suffix),
            "user": (self.user_prefix, self.user_suffix),
            "assistant": (self.assistant_prefix, self.assistant_suffix),
        }[role]


LLAMA2_TEMPLATE = ChatTemplate(
    name="llama2",
    system_prefix="<s>[INST] <<SYS>>\n",
    system_suffix="\n<</SYS>>\n\n",
    user_prefix="",
    user_suffix=" [/INST]",
    assistant_prefix=" ",
    assistant_suffix=" </s>",
)

# MPT-chat follows the ChatML convention.
MPT_TEMPLATE = ChatTemplate(
    name="mpt",
    system_prefix="<|im_start|>system\n",
    system_suffix="<|im_end|>\n",
    user_prefix="<|im_start|>user\n",
    user_suffix="<|im_end|>\n",
    assistant_prefix="<|im_start|>assistant\n",
    assistant_suffix="<|im_end|>\n",
)

FALCON_TEMPLATE = ChatTemplate(
    name="falcon",
    system_prefix="",
    system_suffix="\n",
    user_prefix="User: ",
    user_suffix="\n",
    assistant_prefix="Assistant: ",
    assistant_suffix="\n",
)

# Identity framing: role tags contribute nothing (base, non-chat models).
PLAIN_TEMPLATE = ChatTemplate(
    name="plain",
    system_prefix="", system_suffix="\n",
    user_prefix="", user_suffix="\n",
    assistant_prefix="", assistant_suffix="\n",
)

TEMPLATES: dict[str, ChatTemplate] = {
    t.name: t for t in (LLAMA2_TEMPLATE, MPT_TEMPLATE, FALCON_TEMPLATE, PLAIN_TEMPLATE)
}


def template_for_architecture(architecture: str) -> ChatTemplate:
    """Default template for each engine architecture family."""
    return {
        "llama": LLAMA2_TEMPLATE,
        "mpt": MPT_TEMPLATE,
        "falcon": FALCON_TEMPLATE,
        "gpt2": PLAIN_TEMPLATE,
    }.get(architecture, PLAIN_TEMPLATE)


def resolve_roles(schema: SchemaNode, template: ChatTemplate) -> SchemaNode:
    """Replace every RoleNode with its framing text around its children."""

    def resolve_children(children: list) -> list:
        out: list = []
        for child in children:
            if isinstance(child, RoleNode):
                prefix, suffix = template.framing(child.role)
                if prefix:
                    out.append(TextNode(prefix))
                out.extend(resolve_children(child.children))
                if suffix:
                    out.append(TextNode(suffix))
            elif hasattr(child, "children"):
                child.children = resolve_children(child.children)
                out.append(child)
            elif hasattr(child, "members"):
                for member in child.members:
                    member.children = resolve_children(member.children)
                out.append(child)
            else:
                out.append(child)
        return out

    return SchemaNode(
        name=schema.name,
        children=resolve_children(schema.children),
        scaffolds=list(schema.scaffolds),
    )
