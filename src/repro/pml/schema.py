"""Schema object: validated PML schema with module lookup and serialization.

A :class:`Schema` wraps a parsed :class:`~repro.pml.ast.SchemaNode` and
provides what the cache layers need: a global module registry, parent
links for nested modules, union membership, scaffold sets, and a canonical
PML serialization (used by the Python-to-PML compiler round-trip tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pml.ast import (
    ModuleNode,
    ParamNode,
    RoleNode,
    SchemaNode,
    TextNode,
    UnionNode,
    iter_modules,
)
from repro.pml.chat import ChatTemplate, resolve_roles
from repro.pml.errors import ValidationError
from repro.pml.parser import parse_schema


@dataclass
class Schema:
    """A validated schema ready for layout and encoding."""

    root: SchemaNode
    modules: dict[str, ModuleNode] = field(default_factory=dict)
    parents: dict[str, str | None] = field(default_factory=dict)
    union_of: dict[str, int] = field(default_factory=dict)  # module -> union index

    @property
    def name(self) -> str:
        return self.root.name

    @property
    def scaffolds(self) -> list[tuple[str, ...]]:
        return self.root.scaffolds

    @classmethod
    def parse(cls, source: str, template: ChatTemplate | None = None) -> "Schema":
        """Parse, optionally compile chat-role tags, and validate."""
        root = parse_schema(source)
        if template is not None:
            root = resolve_roles(root, template)
        return cls.from_node(root)

    @classmethod
    def from_node(cls, root: SchemaNode) -> "Schema":
        schema = cls(root=root)
        schema._index()
        schema._validate()
        return schema

    # -- indexing / validation ------------------------------------------------

    def _index(self) -> None:
        union_counter = 0

        def walk(children: list, parent: str | None) -> None:
            nonlocal union_counter
            for child in children:
                if isinstance(child, ModuleNode):
                    self._register(child, parent)
                    walk(child.children, child.name)
                elif isinstance(child, UnionNode):
                    index = union_counter
                    union_counter += 1
                    for member in child.members:
                        self._register(member, parent)
                        self.union_of[member.name] = index
                        walk(member.children, member.name)
                elif isinstance(child, RoleNode):
                    walk(child.children, parent)

        walk(self.root.children, None)

    def _register(self, module: ModuleNode, parent: str | None) -> None:
        if module.name in self.modules:
            raise ValidationError(
                f"duplicate module name {module.name!r} in schema {self.name!r}"
            )
        self.modules[module.name] = module
        self.parents[module.name] = parent

    def _validate(self) -> None:
        for module in self.modules.values():
            seen_params: set[str] = set()
            for child in module.children:
                if isinstance(child, ParamNode):
                    if child.name in seen_params:
                        raise ValidationError(
                            f"duplicate parameter {child.name!r} in module "
                            f"{module.name!r}"
                        )
                    seen_params.add(child.name)
        for names in self.root.scaffolds:
            for name in names:
                if name not in self.modules:
                    raise ValidationError(
                        f"scaffold references unknown module {name!r}"
                    )
        if any(isinstance(c, ParamNode) for c in self.root.children):
            raise ValidationError(
                "<param> must appear inside a <module>, not at schema top level"
            )

    # -- queries ----------------------------------------------------------------

    def module(self, name: str) -> ModuleNode:
        try:
            return self.modules[name]
        except KeyError:
            raise KeyError(
                f"schema {self.name!r} has no module {name!r}; "
                f"known: {sorted(self.modules)}"
            ) from None

    def params_of(self, name: str) -> dict[str, ParamNode]:
        return {
            child.name: child
            for child in self.module(name).children
            if isinstance(child, ParamNode)
        }

    def ancestors(self, name: str) -> list[str]:
        """Chain of enclosing module names, innermost first."""
        chain: list[str] = []
        parent = self.parents.get(name)
        while parent is not None:
            chain.append(parent)
            parent = self.parents.get(parent)
        return chain

    def in_same_union(self, a: str, b: str) -> bool:
        ua, ub = self.union_of.get(a), self.union_of.get(b)
        return ua is not None and ua == ub

    # -- serialization ------------------------------------------------------------

    def to_pml(self) -> str:
        """Canonical PML text (round-trips through :func:`parse_schema`)."""
        parts = [f'<schema name="{self.name}">']
        for names in self.root.scaffolds:
            parts.append(f'<scaffold modules="{",".join(names)}"/>')
        parts.extend(_serialize(child) for child in self.root.children)
        parts.append("</schema>")
        return "\n".join(parts)


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;")


def _serialize(node) -> str:
    if isinstance(node, TextNode):
        return _escape(node.text)
    if isinstance(node, ParamNode):
        default = f' default="{_escape(node.default)}"' if node.default else ""
        return f'<param name="{node.name}" len="{node.length}"{default}/>'
    if isinstance(node, ModuleNode):
        body = "".join(_serialize(c) for c in node.children)
        return f'<module name="{node.name}">{body}</module>'
    if isinstance(node, UnionNode):
        body = "".join(_serialize(m) for m in node.members)
        return f"<union>{body}</union>"
    if isinstance(node, RoleNode):
        body = "".join(_serialize(c) for c in node.children)
        return f"<{node.role}>{body}</{node.role}>"
    raise TypeError(f"cannot serialize {type(node).__name__}")
