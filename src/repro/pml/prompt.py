"""Prompt objects and their resolution against a schema.

Serving a prompt starts with *alignment* (paper §3.4): Prompt Cache "parses
[the prompt] to ensure alignment with the claimed schema" and "verifies the
validity of the imported modules". :func:`resolve` performs that check and
produces a :class:`ResolvedPrompt` — the exact work order for cached
inference: which modules to splice in (with parameter arguments), and which
new text segments to prefill, anchored to their schema positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pml.ast import ImportNode, PromptNode, TextNode
from repro.pml.errors import SchemaMismatchError
from repro.pml.parser import parse_prompt
from repro.pml.schema import Schema


@dataclass
class Selection:
    """One imported module with any supplied parameter arguments."""

    name: str
    args: dict[str, str] = field(default_factory=dict)


@dataclass
class NewText:
    """Uncached prompt text, positioned after ``anchor`` (a module name) or
    at the very start when ``anchor`` is None."""

    text: str
    anchor: str | None


@dataclass
class ResolvedPrompt:
    """A prompt checked against its schema and flattened for serving."""

    schema: Schema
    selections: list[Selection]
    texts: list[NewText]

    def selected_names(self) -> list[str]:
        return [s.name for s in self.selections]


def parse(source: str) -> PromptNode:
    """Parse prompt markup (thin alias of :func:`repro.pml.parser.parse_prompt`)."""
    return parse_prompt(source)


def resolve(prompt: PromptNode | str, schema: Schema) -> ResolvedPrompt:
    """Validate ``prompt`` against ``schema`` and flatten it.

    Raises :class:`SchemaMismatchError` when the prompt names the wrong
    schema, imports unknown modules, nests imports outside their parent
    module, selects two members of one union, supplies undeclared
    parameters, or imports a module twice.
    """
    if isinstance(prompt, str):
        prompt = parse_prompt(prompt)
    if prompt.schema != schema.name:
        raise SchemaMismatchError(
            f"prompt targets schema {prompt.schema!r} but was resolved against "
            f"{schema.name!r}"
        )

    selections: list[Selection] = []
    texts: list[NewText] = []
    seen: set[str] = set()

    def visit(children: list, parent: str | None, anchor: str | None) -> str | None:
        for child in children:
            if isinstance(child, TextNode):
                texts.append(NewText(text=child.text, anchor=anchor))
                continue
            assert isinstance(child, ImportNode)
            anchor = _visit_import(child, parent)
        return anchor

    def _visit_import(node: ImportNode, parent: str | None) -> str:
        if node.name not in schema.modules:
            raise SchemaMismatchError(
                f"prompt imports unknown module {node.name!r} "
                f"(schema {schema.name!r} defines {sorted(schema.modules)})"
            )
        if node.name in seen:
            raise SchemaMismatchError(f"module {node.name!r} imported twice")
        actual_parent = schema.parents[node.name]
        if actual_parent != parent:
            where = f"inside <{actual_parent}>" if actual_parent else "at the top level"
            raise SchemaMismatchError(
                f"module {node.name!r} must be imported {where}"
            )
        declared = schema.params_of(node.name)
        for arg in node.args:
            if arg not in declared:
                raise SchemaMismatchError(
                    f"module {node.name!r} has no parameter {arg!r}; "
                    f"declared: {sorted(declared)}"
                )
        for prior in seen:
            if schema.in_same_union(prior, node.name):
                raise SchemaMismatchError(
                    f"modules {prior!r} and {node.name!r} belong to the same "
                    "<union>; a prompt may select at most one"
                )
        seen.add(node.name)
        selections.append(Selection(name=node.name, args=dict(node.args)))
        # Nested imports live inside this module; new text inside an import
        # is anchored to the module itself.
        visit(node.children, node.name, node.name)
        return node.name

    visit(prompt.children, None, None)
    return ResolvedPrompt(schema=schema, selections=selections, texts=texts)
