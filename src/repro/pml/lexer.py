"""Tokenizer for the PML markup dialect.

PML looks like XML but is deliberately more lenient, because prompt modules
routinely carry text that would break an XML parser — source code with
``<`` and ``&`` (the Fig 6 code-generation schema), math, logs. Rules:

- ``<`` starts a tag only when followed by a letter, ``_``, ``/`` or ``!``;
  otherwise it is literal text.
- ``<!-- ... -->`` comments are skipped.
- ``<![CDATA[ ... ]]>`` passes its payload through verbatim.
- Attribute values use single or double quotes; bare (unquoted) values are
  accepted for simple tokens.
- The entities ``&lt; &gt; &amp; &quot; &apos;`` are decoded in text and
  attribute values; a bare ``&`` is literal.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.pml.errors import ParseError

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-.]*")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}
_ENTITY_RE = re.compile(r"&(lt|gt|amp|quot|apos);")


def decode_entities(text: str) -> str:
    return _ENTITY_RE.sub(lambda m: _ENTITIES[m.group(1)], text)


@dataclass
class Token:
    """One lexical unit; ``kind`` is ``"open"``, ``"close"`` or ``"text"``."""

    kind: str
    line: int
    column: int
    name: str = ""  # tag name for open/close
    attrs: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False
    text: str = ""


class Lexer:
    """Single-pass scanner producing a flat token stream."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        text_parts: list[str] = []
        text_line, text_col = self.line, self.column

        def flush_text() -> None:
            nonlocal text_parts, text_line, text_col
            if text_parts:
                out.append(
                    Token(
                        "text",
                        text_line,
                        text_col,
                        text=decode_entities("".join(text_parts)),
                    )
                )
                text_parts = []

        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch == "<" and self._tag_follows():
                flush_text()
                token = self._lex_tag()
                if token is not None:  # comments yield None
                    if token.kind == "text":
                        # CDATA payload joins the surrounding text run.
                        text_line, text_col = token.line, token.column
                        text_parts.append(token.text)
                    else:
                        out.append(token)
                text_line, text_col = self.line, self.column
            else:
                if not text_parts:
                    text_line, text_col = self.line, self.column
                text_parts.append(ch)
                self._advance()
        flush_text()
        return out

    # -- internals ------------------------------------------------------------

    def _tag_follows(self) -> bool:
        nxt = self.source[self.pos + 1 : self.pos + 2]
        return bool(nxt) and (nxt.isalpha() or nxt in "_/!")

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.line, self.column)

    def _lex_tag(self) -> Token | None:
        start_line, start_col = self.line, self.column
        if self.source.startswith("<!--", self.pos):
            end = self.source.find("-->", self.pos + 4)
            if end < 0:
                raise self._error("unterminated comment")
            self._advance(end + 3 - self.pos)
            return None
        if self.source.startswith("<![CDATA[", self.pos):
            end = self.source.find("]]>", self.pos + 9)
            if end < 0:
                raise self._error("unterminated CDATA section")
            payload = self.source[self.pos + 9 : end]
            self._advance(end + 3 - self.pos)
            return Token("text", start_line, start_col, text=payload)
        if self.source.startswith("</", self.pos):
            self._advance(2)
            name = self._lex_name()
            self._skip_spaces()
            self._expect(">")
            return Token("close", start_line, start_col, name=name)

        self._advance(1)  # consume '<'
        name = self._lex_name()
        attrs: dict[str, str] = {}
        while True:
            self._skip_spaces()
            if self.pos >= len(self.source):
                raise self._error(f"unterminated <{name}> tag")
            ch = self.source[self.pos]
            if ch == ">":
                self._advance()
                return Token("open", start_line, start_col, name=name, attrs=attrs)
            if self.source.startswith("/>", self.pos):
                self._advance(2)
                return Token(
                    "open", start_line, start_col, name=name, attrs=attrs,
                    self_closing=True,
                )
            key = self._lex_name()
            self._skip_spaces()
            if self.pos < len(self.source) and self.source[self.pos] == "=":
                self._advance()
                self._skip_spaces()
                attrs[key] = self._lex_attr_value()
            else:
                attrs[key] = ""  # valueless attribute

    def _lex_name(self) -> str:
        match = _NAME_RE.match(self.source, self.pos)
        if not match:
            raise self._error("expected a tag or attribute name")
        self._advance(match.end() - self.pos)
        return match.group()

    def _lex_attr_value(self) -> str:
        if self.pos >= len(self.source):
            raise self._error("expected an attribute value")
        quote = self.source[self.pos]
        if quote in "\"'":
            end = self.source.find(quote, self.pos + 1)
            if end < 0:
                raise self._error("unterminated attribute value")
            value = self.source[self.pos + 1 : end]
            self._advance(end + 1 - self.pos)
            return decode_entities(value)
        match = re.match(r"[^\s>/]+", self.source[self.pos :])
        if not match:
            raise self._error("expected an attribute value")
        self._advance(match.end())
        return decode_entities(match.group())

    def _skip_spaces(self) -> None:
        while self.pos < len(self.source) and self.source[self.pos].isspace():
            self._advance()

    def _expect(self, literal: str) -> None:
        if not self.source.startswith(literal, self.pos):
            raise self._error(f"expected {literal!r}")
        self._advance(len(literal))
