"""Recursive-descent parser turning PML token streams into ASTs.

Two entry points: :func:`parse_schema` and :func:`parse_prompt`. Both share
the token cursor; the grammar differs only in which tags are allowed where.
"""

from __future__ import annotations

from repro.pml.ast import (
    CHAT_ROLES,
    RESERVED_TAGS,
    ImportNode,
    ModuleNode,
    ParamNode,
    PromptNode,
    RoleNode,
    SchemaNode,
    TextNode,
    UnionNode,
)
from repro.pml.errors import ParseError
from repro.pml.lexer import Lexer, Token


class _Cursor:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self) -> Token | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            last = self._tokens[-1] if self._tokens else None
            raise ParseError(
                "unexpected end of document",
                last.line if last else 1,
                last.column if last else 1,
            )
        self._index += 1
        return token


def _error(token: Token, message: str) -> ParseError:
    return ParseError(message, token.line, token.column)


def _skip_blank(text: str) -> bool:
    """Whitespace-only text between structural tags is layout noise."""
    return not text.strip()


# -- schema grammar ------------------------------------------------------------


def parse_schema(source: str) -> SchemaNode:
    """Parse a ``<schema name="...">`` document into a :class:`SchemaNode`."""
    cursor = _Cursor(Lexer(source).tokens())
    root = _next_structural(cursor)
    if root is None or root.kind != "open" or root.name != "schema":
        raise ParseError("a schema document must have a single <schema> root", 1, 1)
    name = root.attrs.get("name", "")
    if not name:
        raise _error(root, "<schema> requires a name attribute")
    node = SchemaNode(name=name)
    if not root.self_closing:
        node.children, node.scaffolds = _parse_schema_children(cursor, "schema")
    _expect_end(cursor)
    return node


def _parse_schema_children(
    cursor: _Cursor, parent: str
) -> tuple[list, list[tuple[str, ...]]]:
    children: list = []
    scaffolds: list[tuple[str, ...]] = []
    while True:
        token = cursor.next()
        if token.kind == "close":
            if token.name != parent:
                raise _error(token, f"mismatched </{token.name}>; open tag is <{parent}>")
            return children, scaffolds
        if token.kind == "text":
            if not _skip_blank(token.text):
                children.append(TextNode(token.text))
            continue
        # open tag
        if token.name == "module":
            children.append(_parse_module(cursor, token))
        elif token.name == "union":
            children.append(_parse_union(cursor, token))
        elif token.name == "param":
            children.append(_parse_param(token))
        elif token.name in CHAT_ROLES:
            role = RoleNode(role=token.name)
            if not token.self_closing:
                role.children, nested_scaffolds = _parse_schema_children(
                    cursor, token.name
                )
                scaffolds.extend(nested_scaffolds)
            children.append(role)
        elif token.name == "scaffold":
            names = tuple(
                n.strip() for n in token.attrs.get("modules", "").split(",") if n.strip()
            )
            if len(names) < 2:
                raise _error(token, "<scaffold> requires modules=\"a,b,...\" with 2+ names")
            if not token.self_closing:
                raise _error(token, "<scaffold> must be self-closing")
            scaffolds.append(names)
        else:
            raise _error(
                token,
                f"unexpected <{token.name}> in a schema; expected module/union/"
                "param/scaffold or a chat-role tag",
            )


def _parse_module(cursor: _Cursor, open_token: Token) -> ModuleNode:
    name = open_token.attrs.get("name", "")
    if not name:
        raise _error(open_token, "<module> requires a name attribute")
    if name in RESERVED_TAGS:
        raise _error(open_token, f"module name {name!r} shadows a reserved tag")
    module = ModuleNode(name=name)
    if not open_token.self_closing:
        module.children, scaffolds = _parse_schema_children(cursor, "module")
        if scaffolds:
            raise _error(open_token, "<scaffold> must appear at schema top level")
    return module


def _parse_union(cursor: _Cursor, open_token: Token) -> UnionNode:
    if open_token.self_closing:
        raise _error(open_token, "<union> cannot be empty")
    union = UnionNode()
    while True:
        token = cursor.next()
        if token.kind == "close":
            if token.name != "union":
                raise _error(token, f"mismatched </{token.name}> inside <union>")
            if not union.members:
                raise _error(open_token, "<union> cannot be empty")
            return union
        if token.kind == "text":
            if _skip_blank(token.text):
                continue
            raise _error(token, "bare text is not allowed inside <union>; wrap it in a <module>")
        if token.name != "module":
            raise _error(token, "<union> may contain only <module> children")
        union.members.append(_parse_module(cursor, token))


def _parse_param(token: Token) -> ParamNode:
    name = token.attrs.get("name", "")
    if not name:
        raise _error(token, "<param> requires a name attribute")
    raw_len = token.attrs.get("len", "")
    try:
        length = int(raw_len)
    except ValueError:
        raise _error(token, f"<param> len must be an integer, got {raw_len!r}") from None
    if length < 1:
        raise _error(token, "<param> len must be >= 1")
    if not token.self_closing:
        raise _error(token, "<param> must be self-closing")
    return ParamNode(name=name, length=length, default=token.attrs.get("default", ""))


# -- prompt grammar --------------------------------------------------------------


def parse_prompt(source: str) -> PromptNode:
    """Parse a ``<prompt schema="...">`` document into a :class:`PromptNode`."""
    cursor = _Cursor(Lexer(source).tokens())
    root = _next_structural(cursor)
    if root is None or root.kind != "open" or root.name != "prompt":
        raise ParseError("a prompt document must have a single <prompt> root", 1, 1)
    schema = root.attrs.get("schema", "")
    if not schema:
        raise _error(root, "<prompt> requires a schema attribute")
    node = PromptNode(schema=schema)
    if not root.self_closing:
        node.children = _parse_prompt_children(cursor, "prompt")
    _expect_end(cursor)
    return node


def _parse_prompt_children(cursor: _Cursor, parent: str) -> list:
    children: list = []
    while True:
        token = cursor.next()
        if token.kind == "close":
            if token.name != parent:
                raise _error(token, f"mismatched </{token.name}>; open tag is <{parent}>")
            return children
        if token.kind == "text":
            if not _skip_blank(token.text):
                children.append(TextNode(token.text))
            continue
        if token.name in RESERVED_TAGS:
            raise _error(
                token, f"<{token.name}> is a schema-side tag; prompts import modules by name"
            )
        node = ImportNode(name=token.name, args=dict(token.attrs))
        if not token.self_closing:
            node.children = _parse_prompt_children(cursor, token.name)
        children.append(node)


# -- shared ----------------------------------------------------------------------


def _next_structural(cursor: _Cursor) -> Token | None:
    """Skip leading whitespace text; return the first real token."""
    while True:
        token = cursor.peek()
        if token is None:
            return None
        if token.kind == "text" and _skip_blank(token.text):
            cursor.next()
            continue
        return cursor.next()


def _expect_end(cursor: _Cursor) -> None:
    trailing = _next_structural(cursor)
    if trailing is not None:
        raise _error(trailing, "content after the document root")
