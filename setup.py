"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (see the note in pyproject.toml). All metadata lives in pyproject."""

from setuptools import setup

setup()
