"""Cluster scaling: TTFT and re-encode avoidance at 1 / 2 / 4 workers.

Drives the same skewed schema mix (popularity ``1/(i+1)``, like real
schema pools) through :class:`repro.cluster.ClusterRouter` at increasing
worker counts. Affinity routing keeps each schema's modules hot on its
home worker; spilled or re-placed requests pull module KV over the
distribution plane instead of re-encoding, so the interesting numbers
are TTFT percentiles *and* ``cluster_reencode_avoided_tokens_total``.

A second scenario kills one of two workers mid-trace and audits the
zero-loss contract: every accepted request completes (on the survivor if
need be) — nothing is silently dropped.

CLI use (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_cluster.py --quick \
        --out BENCH_cluster.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
from pathlib import Path

from repro.bench import emit, format_table
from repro.cluster import ClusterRouter, ClusterWorker
from repro.cluster.loadgen import run_cluster_open_loop
from repro.llm import build_model, tiny_config
from repro.pml.chat import PLAIN_TEMPLATE
from repro.server import ServeOptions, build_workload
from repro.serving.traces import SchemaProfile, synthesize_trace
from repro.tokenizer import default_tokenizer

WORKER_COUNTS = [1, 2, 4]
SEED = 13


def _profiles(n_schemas: int, module_tokens: int) -> list[SchemaProfile]:
    return [
        SchemaProfile(
            name=f"schema{i}",
            module_tokens=module_tokens,
            uncached_mean=8,
            decode_mean=3,
            weight=1.0 / (i + 1),
        )
        for i in range(n_schemas)
    ]


def _make_router(model, tok, n_workers: int, workload) -> ClusterRouter:
    options = ServeOptions(
        max_queue_depth=128,
        queue_delay_budget_s=None,
        max_batch=2,
        batch_max_wait_s=0.005,
    )
    workers = [
        ClusterWorker(f"w{i}", model, tok, template=PLAIN_TEMPLATE, options=options)
        for i in range(n_workers)
    ]
    # An aggressive spill threshold: the skewed mix overloads the hot
    # schema's home worker, requests spill, and the spill targets must
    # pull module KV over the plane — the behaviour under measure.
    router = ClusterRouter(workers, spill_queue_depth=2)
    for source in workload.schema_sources.values():
        router.register_schema(source)
    return router


async def _drive_plain(router, workload, trace):
    async with router:
        return await run_cluster_open_loop(router, workload, trace)


async def _drive_with_kill(router, workload, trace, victim: str):
    async with router:
        run = asyncio.create_task(run_cluster_open_loop(router, workload, trace))
        # Pull the rug a third of the way through the trace.
        await asyncio.sleep(trace[len(trace) // 3].arrival_s)
        await router.kill_worker(victim)
        return await run


def _scaling_row(router, report, n_workers: int) -> dict:
    snap = router.snapshot()
    gauges = snap["router"]["gauges"]
    hits = gauges.get('cluster_peer_fetch_total{outcome="hit"}', 0.0)
    misses = gauges.get('cluster_peer_fetch_total{outcome="miss"}', 0.0)
    return {
        "workers": n_workers,
        "completed": report.completed,
        "rejected": report.rejected,
        "failed": report.failed,
        "ttft_p50_ms": 1000 * report.ttft_percentile(50),
        "ttft_p95_ms": 1000 * report.ttft_percentile(95),
        "throughput_rps": report.throughput_rps,
        "peer_fetch_hits": hits,
        "peer_fetch_misses": misses,
        "reencode_avoided_tokens": gauges.get(
            "cluster_reencode_avoided_tokens_total", 0.0
        ),
        "spills": snap["router"]["counters"].get("cluster_spill_total", 0.0),
    }


def run_cluster_bench(model, tok, *, quick: bool = False) -> dict:
    """Scaling sweep + kill-one audit. Returns the dict that
    ``BENCH_cluster.json`` serializes."""
    n_schemas = 3 if quick else 6
    module_tokens = 24 if quick else 48
    rate = 120.0 if quick else 200.0
    duration_s = 0.5 if quick else 1.5

    profiles = _profiles(n_schemas, module_tokens)
    workload = build_workload(profiles, tok, seed=SEED)

    scaling = []
    for n_workers in WORKER_COUNTS:
        trace = synthesize_trace(profiles, rate, duration_s, seed=SEED)
        router = _make_router(model, tok, n_workers, workload)
        report = asyncio.run(_drive_plain(router, workload, trace))
        scaling.append(_scaling_row(router, report, n_workers))

    # Zero-loss audit: 2 workers, one killed a third of the way in.
    trace = synthesize_trace(profiles, rate, duration_s, seed=SEED)
    router = _make_router(model, tok, 2, workload)
    report = asyncio.run(_drive_with_kill(router, workload, trace, "w0"))
    snap = router.snapshot()
    kill_audit = {
        "trace_requests": len(trace),
        "completed": report.completed,
        "rejected": report.rejected,
        "expired": report.expired,
        "failed": report.failed,
        "failures": report.failures,
        "accounted": report.completed + report.rejected + report.expired
        + report.failed,
        "failovers": snap["router"]["counters"].get("cluster_failover_total", 0.0),
        "rebalances": snap["router"]["counters"].get("cluster_rebalance_total", 0.0),
    }

    return {
        "quick": quick,
        "schemas": n_schemas,
        "module_tokens": module_tokens,
        "rate_rps": rate,
        "duration_s": duration_s,
        "scaling": scaling,
        "kill_audit": kill_audit,
    }


def check_acceptance(results: dict) -> None:
    """The ISSUE's floors: serve at every scale, no silent request loss."""
    for row in results["scaling"]:
        assert row["completed"] > 0, f"{row['workers']} workers completed nothing"
        assert row["failed"] == 0, (
            f"{row['workers']} workers: {row['failed']} failed requests"
        )
    audit = results["kill_audit"]
    assert audit["failed"] == 0, (
        f"kill-one audit lost requests: {audit['failures']}"
    )
    assert audit["accounted"] == audit["trace_requests"], (
        f"unaccounted requests: {audit['accounted']} of "
        f"{audit['trace_requests']}"
    )
    assert audit["rebalances"] >= 1, "kill never triggered a rebalance"


def _report(results: dict) -> str:
    rows = [
        [
            row["workers"],
            row["completed"],
            row["rejected"],
            f"{row['ttft_p50_ms']:.1f}",
            f"{row['ttft_p95_ms']:.1f}",
            f"{row['throughput_rps']:.1f}",
            f"{row['peer_fetch_hits']:g}",
            f"{row['reencode_avoided_tokens']:g}",
            f"{row['spills']:g}",
        ]
        for row in results["scaling"]
    ]
    audit = results["kill_audit"]
    return emit(
        "cluster",
        format_table(
            f"Cluster scaling: {results['schemas']} skewed schemas, "
            f"{results['rate_rps']:g} req/s for {results['duration_s']:g}s",
            ["workers", "done", "rej", "p50_ms", "p95_ms", "rps",
             "peer_hits", "avoided_tok", "spills"],
            rows,
            note=(
                f"kill-one audit: {audit['completed']} completed of "
                f"{audit['trace_requests']} offered, {audit['failed']} lost, "
                f"{audit['failovers']:g} failovers after killing w0 mid-trace"
            ),
        ),
    )


def test_cluster_scaling(tiny_model, tok):
    results = run_cluster_bench(tiny_model, tok, quick=True)
    _report(results)
    check_acceptance(results)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer schemas, shorter trace (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_cluster.json"),
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)

    tok = default_tokenizer()
    model = build_model(tiny_config("llama", vocab_size=tok.vocab_size), seed=SEED)
    results = run_cluster_bench(model, tok, quick=args.quick)
    _report(results)
    check_acceptance(results)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
