"""§3.4 with real tensors — paged module sharing across a batch.

Complements `bench_sec34_batch_memory.py` (analytic accounting at paper
shapes) by demonstrating the mechanism itself: N requests over the same
cached document module, each with its own suffix and decode, backed by one
refcounted physical copy of the module pages. Measured: physical vs
logical bytes, copy-on-write count, and output equivalence with private
caches.
"""

from __future__ import annotations

import numpy as np

from repro.bench import emit, format_table
from repro.cache.encoder import encode_module
from repro.cache.layout import layout_schema
from repro.llm.generation import decode_loop
from repro.llm.kv import KVCache, LayerKV
from repro.llm.paged import shared_batch_caches
from repro.pml import Schema

BATCH = 12
DOC = "the quick brown fox jumps over the lazy dog . " * 12


def test_paged_sharing(benchmark, small_model, tok):
    layout = layout_schema(
        Schema.parse(f'<schema name="pg"><module name="doc">{DOC}</module></schema>'),
        tok,
    )
    module_kv = encode_module(small_model, layout.module("doc"))
    start = layout.total_length

    caches, base = shared_batch_caches(small_model.config, [module_kv], BATCH)
    outputs = []
    for i, cache in enumerate(caches):
        suffix = np.array(tok.encode(f" request {i} asks : what happened ?"))
        logits = small_model.forward(
            suffix, np.arange(start, start + len(suffix)), cache
        )[-1]
        tokens, _ = decode_loop(
            small_model, cache, logits, max_new_tokens=4,
            next_position=start + len(suffix),
        )
        outputs.append(tokens)

    physical = base.physical_bytes()
    logical = sum(c.logical_bytes() for c in caches)
    duplicated = BATCH * module_kv.nbytes()
    cow = sum(pool.stats.cow_copies for pool in base.pools)

    # Reference request through a private flat cache.
    flat = KVCache(
        [
            LayerKV.from_arrays(module_kv.keys[i], module_kv.values[i], module_kv.positions)
            for i in range(small_model.config.n_layers)
        ]
    )
    suffix = np.array(tok.encode(" request 0 asks : what happened ?"))
    logits = small_model.forward(suffix, np.arange(start, start + len(suffix)), flat)[-1]
    reference, _ = decode_loop(
        small_model, flat, logits, max_new_tokens=4, next_position=start + len(suffix)
    )

    emit(
        "paged_sharing",
        format_table(
            f"Sec 3.4 mechanism: {BATCH} requests sharing one module's pages",
            ["quantity", "value"],
            [
                ["module tokens", len(module_kv)],
                ["physical bytes (shared pages)", physical],
                ["logical bytes (sum over requests)", logical],
                ["duplicated bytes (no sharing)", duplicated],
                ["physical / duplicated", f"{physical / duplicated:.2f}"],
                ["copy-on-write pages", cow],
                ["outputs match private-cache serving", outputs[0] == reference],
            ],
            note="refcounted pages: the paper's pointer-sharing, with real tensors",
        ),
    )
    assert physical < 0.45 * duplicated
    assert outputs[0] == reference
    assert cow <= BATCH * small_model.config.n_layers  # at most one COW per fork/layer

    def one_request():
        cache = base.fork()
        s = np.array(tok.encode(" quick question ?"))
        l = small_model.forward(s, np.arange(start, start + len(s)), cache)[-1]
        decode_loop(small_model, cache, l, max_new_tokens=1, next_position=start + len(s))
        cache.free()

    benchmark(one_request)
