"""Ablation 5 — KV-state compression for module storage (paper §5.5/§6).

The paper points at attention-state compression as the answer to Table 2's
memory bill (2.5 GB per 1K-token module on Llama2-70B). This ablation
measures the storage/fidelity trade-off of the implemented codecs on real
module states: bytes stored, round-trip error, and greedy-output agreement
with uncompressed serving.
"""

from __future__ import annotations

import numpy as np

from repro.bench import emit, format_table
from repro.cache.compress import CODECS, codec
from repro.cache.encoder import encode_module
from repro.cache.engine import PromptCache
from repro.cache.layout import layout_schema
from repro.hw.allocator import mb_per_token
from repro.llm.config import paper_config
from repro.pml import PLAIN_TEMPLATE, Schema

SCHEMA = (
    '<schema name="comp"><module name="doc">the quick brown fox jumps over '
    "the lazy dog . atlantis has capital coral . the misty valley borders "
    "the ancient gate near zephyria . paris has museum basalt .</module>"
    "</schema>"
)
PROMPT = '<prompt schema="comp"><doc/> answer by completing : atlantis has capital</prompt>'


def test_abl_compression(benchmark, small_model, tok):
    layout = layout_schema(Schema.parse(SCHEMA), tok)
    kv = encode_module(small_model, layout.module("doc"))

    reference_out = None
    rows = []
    for name in sorted(CODECS):
        c = codec(name)
        stored = c.encode(kv)
        nbytes = stored.nbytes() if hasattr(stored, "nbytes") else kv.nbytes()
        if callable(nbytes):  # ModuleKV.nbytes is a method
            nbytes = nbytes()
        decoded = c.decode(stored)
        err = max(
            float(np.max(np.abs(a - b)))
            for a, b in zip(decoded.keys, kv.keys)
        ) if name != "identity" else 0.0

        pc = PromptCache(small_model, tok, template=PLAIN_TEMPLATE, kv_codec=name)
        pc.register_schema(SCHEMA)
        out = pc.serve(PROMPT, max_new_tokens=8).output_ids
        if name == "identity":
            reference_out = out
        rows.append([name, nbytes, round(err, 5), out == reference_out if reference_out else True])

    # Project the savings onto the paper's §5.5 example: a 1K-token module
    # on Llama2-70B costs 2.5 GB at fp16; int8 halves that again.
    llama70 = paper_config("llama2-70b")
    fp16_gb = 1000 * mb_per_token(llama70) / 1024
    rows.append(["llama2-70b 1K-module fp16 (GB)", round(fp16_gb, 2), "-", "-"])
    rows.append(["llama2-70b 1K-module int8 (GB)", round(fp16_gb / 2, 2), "-", "-"])

    emit(
        "abl_compression",
        format_table(
            "Ablation 5: KV-state compression codecs",
            ["codec", "stored_bytes", "max_abs_error", "greedy_output_matches"],
            rows,
            note="identity is fp32 in this engine; fp16 = paper's storage "
            "format; int8 = 4x over fp32 (2x over fp16)",
        ),
    )
    by_name = {r[0]: r for r in rows[:3]}
    assert by_name["fp16"][1] < 0.6 * by_name["identity"][1]
    assert by_name["int8"][1] < 0.35 * by_name["identity"][1]
    assert by_name["fp16"][3] is True  # fp16 never flips greedy here
    benchmark(codec("int8").encode, kv)
