"""Live serving runtime — measured TTFT under load vs. the simulator (§6).

Where ``bench_serving_simulation`` predicts serving behavior with an
analytical device model, this benchmark *measures* it: the asyncio
runtime (`repro.server.LiveServer`) drives the real NumPy engine with an
open-loop Poisson trace, and the identical trace is replayed through the
simulator calibrated to this host. Reported per arrival rate: measured
vs predicted TTFT percentiles, shed load, and the cached-token fraction
the runtime actually achieved.
"""

from __future__ import annotations

import asyncio

from repro.bench import emit, format_table
from repro.cache.engine import PromptCache
from repro.hw.calibrate import calibrate_host
from repro.pml.chat import PLAIN_TEMPLATE
from repro.serving import SchemaProfile, SimConfig, simulate, synthesize_trace
from repro.server import LiveServer, ServeOptions, build_workload, run_open_loop

RATES = [4.0, 12.0]
DURATION_S = 1.5
SEED = 5

PROFILES = [
    SchemaProfile(f"schema{i}", module_tokens=48, uncached_mean=10,
                  decode_mean=4, weight=1.0 / (i + 1))
    for i in range(3)
]


async def _drive(pc, workload, trace):
    options = ServeOptions(max_queue_depth=64, queue_delay_budget_s=None,
                           max_batch=4, batch_max_wait_s=0.01)
    async with LiveServer(pc, options) as server:
        return await run_open_loop(server, workload, trace)


def test_live_serving(benchmark, tok, tiny_model):
    pc = PromptCache(tiny_model, tok, template=PLAIN_TEMPLATE)
    workload = build_workload(PROFILES, tok, seed=SEED)
    workload.register(pc)
    host = calibrate_host().spec
    sim_cfg = SimConfig(model=pc.model.config, device=host, mode="prompt-cache")

    rows = []
    for rate in RATES:
        trace = synthesize_trace(PROFILES, rate, DURATION_S, seed=SEED)
        report = asyncio.run(_drive(pc, workload, trace))
        predicted = simulate(trace, sim_cfg)
        rows.append([
            rate, len(trace), report.completed, report.rejected,
            round(1000 * report.ttft_percentile(50), 1),
            round(1000 * report.ttft_percentile(95), 1),
            round(1000 * predicted.ttft_percentile(50), 1),
            round(1000 * predicted.ttft_percentile(95), 1),
            round(report.cached_token_fraction, 2),
        ])

    emit(
        "live_serving",
        format_table(
            "Live runtime vs simulator: tiny engine, host-calibrated device",
            ["rate_rps", "requests", "completed", "rejected",
             "live_p50_ms", "live_p95_ms", "sim_p50_ms", "sim_p95_ms",
             "cached_frac"],
            rows,
            note="open-loop Poisson trace; identical trace replayed through "
            "the event simulator with a roofline model of this host",
        ),
    )
    for row in rows:
        assert row[2] > 0, "runtime must complete requests"
        assert row[-1] > 0, "live serving must hit the module cache"
