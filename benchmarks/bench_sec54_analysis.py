"""§5.4 — understanding latency improvements: three analyses.

(a) memcpy routes: h2h 3.79 ms, h2d 5.34 ms, d2d 0.23 ms for 5K-token
    attention states (per-layer payload, Llama2-7B fp16);
(b) model-size effect: 7B→13B at 3K tokens adds ~220 ms to the baseline
    but only ~30 ms to Prompt Cache;
(c) end-to-end: TTFT 900→90 ms at 3K on the RTX 4090 while TTST stays
    ~32 ms/token, i.e. ~25 tokens of headstart.
"""

from __future__ import annotations

import pytest

from repro.bench import emit, format_table
from repro.hw.device import RTX_4090
from repro.hw.latency import baseline_ttft, cached_ttft, decode_step_latency
from repro.hw.transfer import Route, copy_latency, layer_kv_payload_bytes
from repro.llm.config import paper_config
from repro.llm.generation import generate

LLAMA7B = paper_config("llama2-7b")
LLAMA13B = paper_config("llama2-13b")


def test_sec54a_memcpy_routes(benchmark):
    payload = layer_kv_payload_bytes(LLAMA7B, 5000)
    rows = [
        ["host-to-host", 3.79, round(copy_latency(payload, Route.HOST_TO_HOST) * 1000, 2)],
        ["host-to-device", 5.34, round(copy_latency(payload, Route.HOST_TO_DEVICE) * 1000, 2)],
        ["device-to-device", 0.23, round(copy_latency(payload, Route.DEVICE_TO_DEVICE) * 1000, 2)],
    ]
    emit(
        "sec54a_memcpy",
        format_table(
            "Sec 5.4(a): memcpy latency for 5K-token attention states",
            ["route", "paper_ms", "ours_ms"],
            rows,
            note=f"payload = one layer's K+V at fp16 = {payload / 1e6:.1f} MB",
        ),
    )
    for _, paper, ours in rows:
        assert ours == pytest.approx(paper, rel=0.12)
    benchmark(copy_latency, payload, Route.HOST_TO_HOST)


def test_sec54b_model_size_effect(benchmark):
    n = 3072
    base7 = baseline_ttft(LLAMA7B, n, RTX_4090).total_s
    base13 = baseline_ttft(LLAMA13B, n, RTX_4090).total_s
    cach7 = cached_ttft(LLAMA7B, n, 32, RTX_4090, "cpu").total_s
    cach13 = cached_ttft(LLAMA13B, n, 32, RTX_4090, "cpu").total_s
    rows = [
        ["baseline (KV Cache)", round(base7 * 1000), round(base13 * 1000),
         round((base13 - base7) * 1000)],
        ["Prompt Cache (CPU mem)", round(cach7 * 1000), round(cach13 * 1000),
         round((cach13 - cach7) * 1000)],
    ]
    emit(
        "sec54b_model_size",
        format_table(
            "Sec 5.4(b): model-size effect at 3K tokens on RTX 4090 (ms)",
            ["system", "llama2-7b", "llama2-13b", "delta"],
            rows,
            note="paper deltas: +220 ms baseline vs +30 ms Prompt Cache; our "
            "constant-throughput model overestimates both, same ordering",
        ),
    )
    baseline_delta = base13 - base7
    cached_delta = cach13 - cach7
    assert baseline_delta > 3 * cached_delta
    benchmark(baseline_ttft, LLAMA13B, n, RTX_4090)


def test_sec54c_end_to_end(benchmark, tiny_model):
    n = 3072
    ttft_base = baseline_ttft(LLAMA7B, n, RTX_4090).total_s
    ttft_cached = cached_ttft(LLAMA7B, n, 32, RTX_4090, "gpu").total_s
    ttst = decode_step_latency(LLAMA7B, n, RTX_4090)
    headstart = (ttft_base - ttft_cached) / ttst
    rows = [
        ["TTFT baseline (ms)", 900, round(ttft_base * 1000)],
        ["TTFT Prompt Cache (ms)", 90, round(ttft_cached * 1000)],
        ["TTST (ms/token)", 32, round(ttst * 1000, 1)],
        ["token headstart", 25, round(headstart)],
    ]
    emit(
        "sec54c_end_to_end",
        format_table(
            "Sec 5.4(c): end-to-end, Llama2-7B @3K on RTX 4090",
            ["quantity", "paper", "ours"],
            rows,
            note="TTST identical under both systems; Prompt Cache only moves TTFT",
        ),
    )
    assert 0.7 < ttft_base < 1.1
    assert 0.05 < ttft_cached < 0.15
    assert 0.015 < ttst < 0.06
    assert headstart > 15

    # Measured TTST invariance on the real engine: decode speed must not
    # depend on whether the prefill was cached (same decode loop).
    result = generate(tiny_model, list(range(10, 80)), max_new_tokens=8)
    assert result.ttst_s > 0
    benchmark(generate, tiny_model, list(range(10, 80)), max_new_tokens=4)
