"""Fabric tiering: predictive prefetch vs demand page-in under capacity.

One capacity-constrained trace, two fabrics with **identical byte
budgets** (same fast-tier and DRAM-tier capacities, same snapshot). The
trace round-robins over more schemas than DRAM can hold, so every
request's modules have been evicted by the time the rotation comes back
around:

- **prefetch OFF** — each request pays the snapshot page-in (or worse)
  on the demand path; the page-in time lands inside TTFT.
- **prefetch ON** — the store's ``maintenance`` tick runs between
  requests (standing in for the live server's spare-capacity scheduler
  iterations); the prefetcher sees each key's mined inter-arrival
  cadence, pages the next keys in the rotation into DRAM ahead of their
  predicted arrival, and the demand fetch becomes a DRAM hit.

Time inside the store is driven by a logical clock (one tick per
request) so the demand cadence the prefetcher mines is deterministic
across hosts; TTFT is real wall clock from the engine. Reported: p95
TTFT off vs on, demand page-ins off vs on, and byte-identity of every
generated token across both fabrics and a plain unconstrained engine —
tiering must never change outputs.

CLI use (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_fabric_tiering.py --quick \
        --out BENCH_fabric.json \
        --check-against benchmarks/results/BENCH_fabric_baseline.json

The regression gate compares the *ratio* p95-on/p95-off, not absolute
seconds, so the committed baseline holds across machines. A broken
prefetch path (nothing predicted, nothing pulled) drives the ratio
toward 1.0, above the gate.
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

import numpy as np

from repro.bench import emit, format_table
from repro.cache.engine import PromptCache
from repro.cache.persist import save_store
from repro.fabric import FabricStore
from repro.llm import build_model, small_config
from repro.tokenizer import default_tokenizer

# The gate fails when the p95 on/off TTFT ratio worsens >25% vs baseline.
REGRESSION_TOLERANCE = 1.25
# Losing prefetch entirely (every request pays the page-in) is caught
# deterministically by the structural acceptance assertions (page-in
# counts, prefetch pulls, DRAM hits); the ratio floor keeps the
# wall-clock gate from flapping on TTFT jitter on shared CI hosts.
NOISE_FLOOR_RATIO = 1.0
# ISSUE floor: prefetch-on must beat prefetch-off on p95 TTFT. p95 over
# the quick trace is a near-max order statistic and one OS hiccup flips
# it, so the quick (CI smoke) floor gates the median instead; the full
# run gates p95 directly.
P95_SPEEDUP_FLOOR = 1.02
MEDIAN_SPEEDUP_FLOOR_QUICK = 1.05


def _words(rng, n: int) -> str:
    vocab = [
        "harbor", "granite", "lantern", "meadow", "orchid", "timber",
        "copper", "quarry", "willow", "ember", "summit", "delta",
    ]
    return " ".join(rng.choice(vocab) for _ in range(n))


def _schemas(n_schemas: int, n_modules: int, module_words: int) -> list[str]:
    rng = np.random.default_rng(7)
    sources = []
    for i in range(n_schemas):
        modules = "".join(
            f'<module name="m{j}">{_words(rng, module_words)}</module>'
            for j in range(n_modules)
        )
        sources.append(f'<schema name="s{i}">{modules}</schema>')
    return sources


def _prompt(i: int, n_modules: int, j: int) -> str:
    imports = "".join(f"<m{k}/>" for k in range(n_modules))
    return f'<prompt schema="s{i}">{imports} q{j}</prompt>'


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q))


def _run_config(
    model, tok, schemas, snapshot_dir, *, prefetch: bool,
    gpu_capacity: int, cpu_capacity: int, bytes_per_s: float,
    requests: int, n_schemas: int, n_modules: int, max_new_tokens: int,
):
    """One pass over the rotation. The logical clock advances one tick
    per request, so per-key inter-arrivals are exactly ``n_schemas``
    ticks and the lead window (2 ticks) covers the next two keys."""
    t = [0.0]
    store = FabricStore(
        gpu_capacity, cpu_capacity,
        snapshot_dir=snapshot_dir,
        prefetch_bytes_per_s=bytes_per_s,
        horizon_s=2.0,
        clock=lambda: t[0],
    )
    pc = PromptCache(model, tok, store=store)
    for source in schemas:
        pc.register_schema(source, eager=False)  # the snapshot holds the KV
    results, ttft_s = [], []
    for j in range(requests):
        t[0] = float(j)
        result = pc.serve(
            _prompt(j % n_schemas, n_modules, j), max_new_tokens=max_new_tokens
        )
        results.append(result)
        # Steady state only: the first rotation is cold for both configs.
        if j >= n_schemas:
            ttft_s.append(result.ttft_s)
        if prefetch:
            store.maintenance()
    return {
        "results": results,
        "ttft_s": ttft_s,
        "fabric": store.fabric_snapshot(),
    }


def run_fabric_bench(model, tok, *, quick: bool = False, workdir=None) -> dict:
    n_schemas = 5 if quick else 6
    n_modules = 2 if quick else 3
    module_words = 48 if quick else 96
    rotations = 5 if quick else 4
    max_new_tokens = 2 if quick else 4
    requests = n_schemas * (rotations + 1)  # one warmup rotation
    schemas = _schemas(n_schemas, n_modules, module_words)
    prompts = [_prompt(j % n_schemas, n_modules, j) for j in range(requests)]

    with tempfile.TemporaryDirectory(prefix="repro-fabric-bench-") as tmp:
        snapshot_dir = Path(workdir or tmp)
        # Seed pass: encode every module once on an unconstrained engine,
        # snapshot the store, and keep the outputs as the reference.
        pc_ref = PromptCache(model, tok)
        for source in schemas:
            pc_ref.register_schema(source, eager=True)
        save_store(pc_ref.store, snapshot_dir)
        schema_bytes = sum(
            entry.nbytes for entry in pc_ref.store.gpu.entries.values()
        ) / n_schemas
        reference = [
            pc_ref.serve(p, max_new_tokens=max_new_tokens) for p in prompts
        ]

        # Identical byte budgets: the fast tier holds ~1.5 schemas, DRAM
        # ~3.3 — wide enough for the current schema's demotions plus the
        # two schemas the prefetcher pulls ahead (otherwise each tick's
        # pull evicts the previous tick's, which is always LRU because
        # nothing touches a prefetched entry until its demand arrives),
        # yet the rotation is n_schemas (>= 5) wide, so by the time a
        # schema comes back around its modules are gone from both tiers.
        gpu_capacity = int(schema_bytes * 1.5)
        cpu_capacity = int(schema_bytes * 3.3)
        bytes_per_s = schema_bytes * 2.2  # ~2 schema pulls per tick
        common = dict(
            gpu_capacity=gpu_capacity, cpu_capacity=cpu_capacity,
            bytes_per_s=bytes_per_s, requests=requests,
            n_schemas=n_schemas, n_modules=n_modules,
            max_new_tokens=max_new_tokens,
        )
        off = _run_config(model, tok, schemas, snapshot_dir, prefetch=False, **common)
        on = _run_config(model, tok, schemas, snapshot_dir, prefetch=True, **common)

    identical = all(
        a.output_ids == b.output_ids == r.output_ids
        for a, b, r in zip(off["results"], on["results"], reference)
    )
    off_p95 = _percentile(off["ttft_s"], 95) * 1e3
    on_p95 = _percentile(on["ttft_s"], 95) * 1e3
    # Demand-path page-ins: every snapshot hit the OFF fabric records is
    # paid inside a request's TTFT; the ON fabric pays (most of) its
    # page-ins inside maintenance ticks instead, where only `swept` time
    # between requests is spent.
    off_demand_pageins = off["fabric"]["tiers"]["snapshot"]["hits"]
    return {
        "quick": quick,
        "n_schemas": n_schemas,
        "n_modules": n_modules,
        "requests": requests,
        "schema_bytes": schema_bytes,
        "gpu_capacity": gpu_capacity,
        "cpu_capacity": cpu_capacity,
        "outputs_identical": identical,
        "off": {
            "p95_ttft_ms": off_p95,
            "median_ttft_ms": _percentile(off["ttft_s"], 50) * 1e3,
            "demand_pageins": off_demand_pageins,
            "prefetch_planned": off["fabric"]["prefetch"]["planned"],
        },
        "on": {
            "p95_ttft_ms": on_p95,
            "median_ttft_ms": _percentile(on["ttft_s"], 50) * 1e3,
            "snapshot_hits": on["fabric"]["tiers"]["snapshot"]["hits"],
            "cpu_hits": on["fabric"]["tiers"]["cpu"]["hits"],
            "prefetch_planned": on["fabric"]["prefetch"]["planned"],
            "budget_denied": on["fabric"]["prefetch"]["budget_denied"],
        },
        "steady": {
            "speedup_p95": off_p95 / on_p95,
            "speedup_median": (
                _percentile(off["ttft_s"], 50) / _percentile(on["ttft_s"], 50)
            ),
            "ratio": on_p95 / off_p95,
        },
    }


def check_acceptance(results: dict) -> None:
    """The ISSUE's floors: byte-identity across tiers always; the
    prefetcher must engage and convert demand page-ins into DRAM hits;
    prefetch-on must beat prefetch-off on p95 TTFT."""
    assert results["outputs_identical"], (
        "fabric outputs diverged from the unconstrained engine — "
        "byte-identity broken"
    )
    # Capacity actually constrained: the OFF fabric pages in from the
    # snapshot on the demand path nearly every steady-state request.
    floor = results["requests"] - 2 * results["n_schemas"]
    assert results["off"]["demand_pageins"] >= floor, (
        f"OFF fabric paged in {results['off']['demand_pageins']} times; "
        f"expected >= {floor} — the trace is not capacity-constrained"
    )
    assert results["off"]["prefetch_planned"] == 0, (
        "prefetch-off fabric planned pulls — the toggle leaks"
    )
    assert results["on"]["prefetch_planned"] >= results["n_schemas"], (
        "prefetcher never engaged on the ON fabric"
    )
    assert results["on"]["cpu_hits"] > 0, (
        "no DRAM hits on the ON fabric — prefetched entries never served"
    )
    if results["quick"]:
        speedup = results["steady"]["speedup_median"]
        assert speedup >= MEDIAN_SPEEDUP_FLOOR_QUICK, (
            f"median TTFT speedup {speedup:.3f}x < "
            f"{MEDIAN_SPEEDUP_FLOOR_QUICK}x "
            f"(off {results['off']['median_ttft_ms']:.2f} ms, "
            f"on {results['on']['median_ttft_ms']:.2f} ms)"
        )
    else:
        speedup = results["steady"]["speedup_p95"]
        assert speedup >= P95_SPEEDUP_FLOOR, (
            f"p95 TTFT speedup {speedup:.3f}x < {P95_SPEEDUP_FLOOR}x "
            f"(off {results['off']['p95_ttft_ms']:.2f} ms, "
            f"on {results['on']['p95_ttft_ms']:.2f} ms)"
        )


def check_regression(results: dict, baseline_path: Path) -> None:
    """Fail when the p95 on/off TTFT ratio regressed >25% vs baseline."""
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("quick") != results["quick"]:
        print(
            "warning: baseline and run use different workload sizes "
            "(--quick mismatch); the ratio comparison is apples-to-oranges"
        )
    ratio = results["steady"]["ratio"]
    base = baseline["steady"]["ratio"]
    limit = max(base * REGRESSION_TOLERANCE, NOISE_FLOOR_RATIO)
    if ratio > limit:
        raise SystemExit(
            f"fabric-tiering regression: on/off p95 TTFT ratio {ratio:.4f} > "
            f"{limit:.4f} (baseline {base:.4f} +25%)"
        )
    print(
        f"regression gate ok: on/off p95 TTFT ratio {ratio:.4f} <= "
        f"{limit:.4f} (baseline {base:.4f} +25%)"
    )


def _report(results: dict) -> str:
    rows = [
        [
            "prefetch off",
            f"{results['off']['median_ttft_ms']:.2f}",
            f"{results['off']['p95_ttft_ms']:.2f}",
            str(results["off"]["demand_pageins"]),
            "0",
        ],
        [
            "prefetch on",
            f"{results['on']['median_ttft_ms']:.2f}",
            f"{results['on']['p95_ttft_ms']:.2f}",
            str(results["on"]["snapshot_hits"]),
            str(results["on"]["prefetch_planned"]),
        ],
    ]
    return emit(
        "fabric_tiering",
        format_table(
            f"Fabric tiering: {results['requests']} requests round-robin "
            f"over {results['n_schemas']} schemas x "
            f"{results['n_modules']} modules, DRAM holds ~3 schemas",
            ["config", "median TTFT (ms)", "p95 TTFT (ms)", "page-ins",
             "prefetches"],
            rows,
            note=(
                f"p95 speedup {results['steady']['speedup_p95']:.2f}x; "
                f"outputs identical: "
                f"{'yes' if results['outputs_identical'] else 'NO'}"
            ),
        ),
    )


def test_fabric_tiering(small_model, tok):
    results = run_fabric_bench(small_model, tok, quick=True)
    _report(results)
    check_acceptance(results)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller rotation, shorter modules (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_fabric.json"),
        help="where to write the JSON result",
    )
    parser.add_argument(
        "--check-against", type=Path, default=None,
        help="baseline JSON; exit non-zero on >25%% p95-ratio regression",
    )
    args = parser.parse_args(argv)

    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    results = run_fabric_bench(model, tok, quick=args.quick)
    _report(results)
    check_acceptance(results)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check_against is not None:
        check_regression(results, args.check_against)


if __name__ == "__main__":
    main()
