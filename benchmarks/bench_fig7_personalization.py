"""Figure 7 — personalization: trait modules grouped in unions (§5.6.2).

Paper setup: six trait categories, five traits each, every category a
<union> (a reader profile selects one trait per category); the prompt asks
for a recommendation given the selected profile. Result: large TTFT
reduction with output quality maintained.
"""

from __future__ import annotations

import itertools

from repro.bench import emit, format_table
from repro.cache.engine import PromptCache
from repro.hw.device import RTX_4090
from repro.hw.latency import baseline_ttft, cached_ttft
from repro.llm.config import paper_config
from repro.pml.chat import PLAIN_TEMPLATE

CATEGORIES = {
    "grade": ["freshman", "sophomore", "junior", "senior", "graduate"],
    "proficiency": ["novice", "beginner", "intermediate", "advanced", "expert"],
    "history": ["algebra", "geometry", "calculus", "statistics", "topology"],
    "style": ["visual", "auditory", "kinesthetic", "verbal", "logical"],
    "assessment": ["quiz", "essay", "project", "exam", "presentation"],
    "pace": ["slow", "steady", "brisk", "intensive", "self-paced"],
}


def personalization_schema() -> str:
    parts = ["<schema name='reader-profile'>",
             "you are a recommender . the reader profile follows . "]
    for category, traits in CATEGORIES.items():
        members = "".join(
            f'<module name="{category}-{trait}">the reader {category} is '
            f"{trait} . they prefer material matched to a {trait} {category} "
            f"and respond well when the {category} stays {trait} . </module>"
            for trait in traits
        )
        parts.append(f"<union>{members}</union>")
    parts.append("</schema>")
    return "".join(parts)


def test_fig7_personalization(benchmark, small_model, tok):
    pc = PromptCache(small_model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(personalization_schema())

    # Serve several distinct profiles from the same cached schema.
    profiles = list(itertools.islice(
        itertools.product(*(zip(itertools.repeat(c), t) for c, t in CATEGORIES.items())), 3
    ))
    rows = []
    for i, profile in enumerate(profiles):
        imports = "".join(f"<{cat}-{trait}/>" for cat, trait in profile)
        prompt = (
            f'<prompt schema="reader-profile">{imports} suggest a book for '
            "this reader and explain the fit .</prompt>"
        )
        cached = pc.serve(prompt, max_new_tokens=8)
        baseline = pc.baseline(prompt, max_new_tokens=8)
        rows.append([
            f"profile-{i}", cached.cached_tokens, cached.uncached_tokens,
            round(baseline.ttft_s * 1000, 1), round(cached.ttft_s * 1000, 1),
            f"{baseline.ttft_s / cached.ttft_s:.1f}x",
        ])

    # Modeled at paper shape: 6 selected trait modules (~40 tokens each)
    # plus a ~25-token request, Llama2-7B on the 4090, GPU memory.
    llama = paper_config("llama2-7b")
    total = 6 * 40 + 25
    modeled = (
        baseline_ttft(llama, total, RTX_4090).total_s
        / cached_ttft(llama, total, 25, RTX_4090, "gpu").total_s
    )
    rows.append(["modeled llama2-7b @ rtx-4090", "-", "-", "-", "-", f"{modeled:.1f}x"])

    emit(
        "fig7_personalization",
        format_table(
            "Figure 7: personalization via trait unions (6 categories x 5 traits)",
            ["profile", "cached_tok", "uncached_tok", "baseline_ms", "cached_ms", "speedup"],
            rows,
            note="every profile reuses the same 30 cached trait modules",
        ),
    )
    measured = [float(r[5].rstrip("x")) for r in rows[:-1]]
    assert all(s > 1.5 for s in measured)
    prompt = (
        '<prompt schema="reader-profile">'
        + "".join(f"<{c}-{t[0]}/>" for c, t in CATEGORIES.items())
        + " suggest a book .</prompt>"
    )
    benchmark(pc.serve, prompt, max_new_tokens=1)
