"""Ablation 4 — union position-ID conservation (§3.2.3).

Unions let mutually exclusive modules share a start position, so a schema
consumes max(member sizes) positions instead of their sum. This ablation
quantifies the savings on the Fig 7 personalization schema: the flat
layout would exhaust a 2K-position model long before the union layout.
"""

from __future__ import annotations

from repro.bench import emit, format_table
from repro.cache.layout import layout_schema
from repro.pml import Schema

N_CATEGORIES = 6
N_TRAITS = 5


def build_schema(use_unions: bool) -> str:
    parts = ["<schema name='layout-abl'>intro text for the recommender . "]
    for c in range(N_CATEGORIES):
        members = "".join(
            f'<module name="c{c}t{t}">category {c} trait {t} with a fairly '
            "long description of the reader preference so spans are "
            "realistic . </module>"
            for t in range(N_TRAITS)
        )
        parts.append(f"<union>{members}</union>" if use_unions else members)
    parts.append("</schema>")
    return "".join(parts)


def test_abl_union_layout(benchmark, tok):
    union_layout = layout_schema(Schema.parse(build_schema(True)), tok)
    flat_layout = layout_schema(Schema.parse(build_schema(False)), tok)
    saved = flat_layout.total_length - union_layout.total_length
    emit(
        "abl_union_layout",
        format_table(
            "Ablation 4: union layout vs flat layout (position-ID usage)",
            ["layout", "positions_used"],
            [
                ["flat (every trait sequential)", flat_layout.total_length],
                ["unions (traits share starts)", union_layout.total_length],
                ["positions saved", saved],
                ["savings", f"{100 * saved / flat_layout.total_length:.0f}%"],
            ],
            note="one union spans max(member) positions instead of sum(members)",
        ),
    )
    # With 5 traits per category the flat layout uses ~5x the positions of
    # the union layout (minus the shared intro).
    assert union_layout.total_length < 0.35 * flat_layout.total_length
    benchmark(layout_schema, Schema.parse(build_schema(True)), tok)
