"""Shared benchmark fixtures: engine, tokenizer, prompt caches.

Benchmarks use the `small` model shape for measured numbers (real NumPy
wall clock on this host) and paper shapes for the analytical device model.
"""

from __future__ import annotations

import pytest

from repro.cache.engine import PromptCache
from repro.llm import build_model, small_config, tiny_config
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer


@pytest.fixture(scope="session")
def tok():
    return default_tokenizer()


@pytest.fixture(scope="session")
def small_model(tok):
    return build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)


@pytest.fixture(scope="session")
def tiny_model(tok):
    return build_model(tiny_config("llama", vocab_size=tok.vocab_size), seed=0)


@pytest.fixture()
def pc_small(small_model, tok):
    return PromptCache(small_model, tok, template=PLAIN_TEMPLATE)


@pytest.fixture()
def pc_tiny(tiny_model, tok):
    return PromptCache(tiny_model, tok, template=PLAIN_TEMPLATE)
