"""Fleet scheduling — cache-affinity routing for a Prompt Cache cluster.

Extends the paper's §6 serving vision to multiple servers: module caches
make request placement matter. Compared here at increasing load: cache-
oblivious round-robin / least-loaded routing vs consistent-hash affinity
(requests for a schema go to its home server, spilling only under queue
pressure). Affinity encodes each schema once per *fleet* instead of once
per *server*, cutting cold-start work and tail latency.
"""

from __future__ import annotations

from repro.bench import emit, format_table
from repro.hw.device import RTX_4090
from repro.llm.config import paper_config
from repro.serving.scheduler import compare_policies
from repro.serving.simulator import SimConfig
from repro.serving.traces import SchemaProfile, synthesize_trace

N_SERVERS = 4
PROFILES = [
    SchemaProfile(f"schema{i}", module_tokens=4000, uncached_mean=100,
                  decode_mean=12, weight=1.0 / (i + 1))
    for i in range(16)
]
CFG = SimConfig(
    model=paper_config("llama2-7b"), device=RTX_4090, mode="prompt-cache",
    gpu_capacity_bytes=20 * 10**9,
)


def run_sweep():
    rows = []
    encode_summary = {}
    for rate in (0.5, 1.0, 2.0, 3.0):
        trace = synthesize_trace(PROFILES, rate, 150, seed=4)
        reports = compare_policies(trace, CFG, n_servers=N_SERVERS, spill_queue_s=1.0)
        row = [rate, len(trace)]
        for policy in ("round-robin", "least-loaded", "affinity"):
            report = reports[policy]
            row += [round(report.ttft_percentile(95), 2), report.total_encodes]
        rows.append(row)
        encode_summary[rate] = {p: r.total_encodes for p, r in reports.items()}
    return rows, encode_summary


def test_fleet_scheduling(benchmark):
    rows, encodes = run_sweep()
    emit(
        "fleet_scheduling",
        format_table(
            f"Fleet scheduling: {N_SERVERS} x RTX 4090, 16 Zipf schemas, prompt-cache mode",
            ["rate_rps", "requests", "rr_p95_s", "rr_encodes",
             "ll_p95_s", "ll_encodes", "aff_p95_s", "aff_encodes"],
            rows,
            note="affinity = consistent-hash home server with load spill; "
            "encodes = fleet-wide module encode events (cold starts)",
        ),
    )
    for rate, by_policy in encodes.items():
        assert by_policy["affinity"] <= by_policy["round-robin"]
        assert by_policy["affinity"] <= by_policy["least-loaded"]
    # At low-to-moderate load affinity matches the oblivious policies' tail
    # latency while cutting fleet-wide encodes substantially; at saturation
    # it trades some tail for the encode savings (the spill threshold is
    # the knob). Assert the moderate-load regime.
    for row in rows[:2]:
        aff_p95, rr_p95 = row[6], row[2]
        assert aff_p95 <= rr_p95 * 1.25
        assert row[7] < 0.7 * row[3]
    benchmark(run_sweep)
