"""Figure 8 — parameterized prompts: the travel-plan schema (§5.6.3).

Paper setup: a templated trip-planning schema with one adjustable
parameter (duration) and two unions (destinations); users re-configure the
template at runtime while retaining caching efficiency.
"""

from __future__ import annotations

from repro.bench import emit, format_table
from repro.cache.engine import PromptCache
from repro.pml.chat import PLAIN_TEMPLATE

TRAVEL_SCHEMA = """
<schema name="travel-plan">
you are an expert travel planner . build an itinerary day by day .
<module name="plan">the trip should last <param name="duration" len="8"/> and
stay within a sensible budget for that length . </module>
<union>
  <module name="miami">destination miami : beaches , nightlife , art deco ,
  surf spots , cuban food and year round sunshine . </module>
  <module name="paris">destination paris : museums , cafes , architecture ,
  the louvre , the seine and excellent bakeries . </module>
</union>
<union>
  <module name="hotel">lodging preference : a quiet hotel near the center . </module>
  <module name="hostel">lodging preference : a lively hostel with shared rooms . </module>
</union>
</schema>
"""

REQUESTS = [
    ("3 days", "miami", "hotel"),
    ("2 weeks", "paris", "hostel"),
    ("1 day", "paris", "hotel"),
]


def test_fig8_parameterized_prompts(benchmark, small_model, tok):
    pc = PromptCache(small_model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(TRAVEL_SCHEMA)
    rows = []
    for duration, dest, lodging in REQUESTS:
        prompt = (
            f'<prompt schema="travel-plan"><plan duration="{duration}"/>'
            f"<{dest}/><{lodging}/> highlight the best food stops .</prompt>"
        )
        cached = pc.serve(prompt, max_new_tokens=8)
        baseline = pc.baseline(prompt, max_new_tokens=8)
        rows.append([
            f"{duration} / {dest} / {lodging}",
            cached.cached_tokens, cached.uncached_tokens,
            round(baseline.ttft_s * 1000, 1), round(cached.ttft_s * 1000, 1),
            f"{baseline.ttft_s / cached.ttft_s:.1f}x",
        ])
    emit(
        "fig8_parameterized",
        format_table(
            "Figure 8: parameterized travel-plan prompts (runtime reconfiguration)",
            ["request", "cached_tok", "uncached_tok", "baseline_ms", "cached_ms", "speedup"],
            rows,
            note="same cached template serves every (duration, destination, lodging)",
        ),
    )
    assert all(float(r[5].rstrip("x")) > 1.5 for r in rows)
    # The parameter argument must actually land in the uncached portion.
    assert all(r[2] > 0 for r in rows)
    prompt = (
        '<prompt schema="travel-plan"><plan duration="3 days"/><miami/>'
        "<hotel/> highlight food .</prompt>"
    )
    benchmark(pc.serve, prompt, max_new_tokens=1)
