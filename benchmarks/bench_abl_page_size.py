"""Ablation 6 — page-size trade-off for paged module sharing.

Page granularity governs the §3.4 sharing mechanism's efficiency:

- small pages minimize internal fragmentation (a module's tail page is
  mostly full) and copy-on-write waste, but multiply page-table length and
  gather overhead;
- large pages amortize bookkeeping but waste tail space and force each
  fork to COW a bigger boundary page.

Swept here on a real workload (one shared module + 8 divergent requests).
"""

from __future__ import annotations

import numpy as np

from repro.bench import emit, format_table
from repro.cache.encoder import encode_module
from repro.cache.layout import layout_schema
from repro.llm.generation import decode_loop
from repro.llm.paged import shared_batch_caches
from repro.pml import Schema

BATCH = 8
DOC = "the quick brown fox jumps over the lazy dog . " * 10
PAGE_SIZES = [4, 8, 16, 32, 64, 128]


def run_one(small_model, tok, page_tokens: int):
    layout = layout_schema(
        Schema.parse(f'<schema name="ps"><module name="doc">{DOC}</module></schema>'),
        tok,
    )
    module_kv = encode_module(small_model, layout.module("doc"))
    start = layout.total_length
    caches, base = shared_batch_caches(
        small_model.config, [module_kv], BATCH, page_tokens=page_tokens
    )
    outputs = []
    for i, cache in enumerate(caches):
        suffix = np.array(tok.encode(f" request {i} asks ?"))
        logits = small_model.forward(
            suffix, np.arange(start, start + len(suffix)), cache
        )[-1]
        tokens, _ = decode_loop(
            small_model, cache, logits, max_new_tokens=2,
            next_position=start + len(suffix),
        )
        outputs.append(tokens)
    physical = base.physical_bytes()
    duplicated = BATCH * module_kv.nbytes()
    cow = sum(pool.stats.cow_copies for pool in base.pools)
    pages = sum(pool.stats.pages_allocated for pool in base.pools)
    return physical, duplicated, cow, pages, outputs


def test_abl_page_size(benchmark, small_model, tok):
    rows = []
    reference_outputs = None
    for page_tokens in PAGE_SIZES:
        physical, duplicated, cow, pages, outputs = run_one(
            small_model, tok, page_tokens
        )
        if reference_outputs is None:
            reference_outputs = outputs
        assert outputs == reference_outputs, page_tokens  # size never alters results
        rows.append([
            page_tokens, pages, cow,
            round(physical / 1e6, 2), f"{physical / duplicated:.2f}",
        ])
    emit(
        "abl_page_size",
        format_table(
            f"Ablation 6: page size vs sharing efficiency ({BATCH} requests, one module)",
            ["page_tokens", "pages_allocated", "cow_copies",
             "physical_MB", "physical/duplicated"],
            rows,
            note="outputs are identical at every page size; only memory "
            "and bookkeeping change",
        ),
    )
    ratios = {r[0]: float(r[4]) for r in rows}
    # Mid-size pages are the sweet spot: tiny pages explode the page count,
    # huge pages approach per-request duplication of the boundary page.
    assert ratios[16] <= ratios[128]
    counts = {r[0]: r[1] for r in rows}
    assert counts[4] > 4 * counts[64]
    benchmark(run_one, small_model, tok, 16)
