"""§3.4 / §5.4 — shared-module memory savings in batched serving.

Paper claim: 100 requests, each a 2K-token prompt sharing one 1K-token
module, cut the KV footprint ~50% under module sharing (paged-attention
style pointers), admitting roughly 2x the batch size.
"""

from __future__ import annotations

import pytest

from repro.bench import emit, format_table
from repro.cache.batch import BatchRequest, batch_footprint, max_batch_size
from repro.llm.config import paper_config

LLAMA7B = paper_config("llama2-7b")


def test_sec34_batch_memory(benchmark):
    requests = [BatchRequest(("shared-doc",), private_tokens=1000)] * 100
    fp = batch_footprint(LLAMA7B, requests, {"shared-doc": 1000})

    budget = 40 * 10**9  # one A100-40GB worth of KV budget
    batch_shared = max_batch_size(LLAMA7B, budget, 1000, 1000, shared=True)
    batch_duplicated = max_batch_size(LLAMA7B, budget, 1000, 1000, shared=False)

    emit(
        "sec34_batch_memory",
        format_table(
            "Sec 3.4: batched serving with a shared 1K-token module (llama2-7b)",
            ["quantity", "value"],
            [
                ["requests", 100],
                ["KV bytes, duplicated (GB)", round(fp.duplicated_bytes / 1e9, 1)],
                ["KV bytes, shared (GB)", round(fp.shared_bytes / 1e9, 1)],
                ["memory saved", f"{100 * fp.savings_fraction:.0f}%"],
                ["max batch @40GB, duplicated", batch_duplicated],
                ["max batch @40GB, shared", batch_shared],
                ["batch-size gain", f"{batch_shared / batch_duplicated:.1f}x"],
            ],
            note="paper: ~50% footprint reduction for this workload (§5.4)",
        ),
    )
    assert fp.savings_fraction == pytest.approx(0.5, abs=0.01)
    assert batch_shared >= 1.8 * batch_duplicated
    benchmark(batch_footprint, LLAMA7B, requests, {"shared-doc": 1000})
