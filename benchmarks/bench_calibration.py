"""Model-validation bench: does the roofline predict the real engine?

The paper-device numbers in Figures 3–5 come from the analytical latency
model; its credibility rests on the same formulas predicting *this host's*
measured NumPy prefill once the host is calibrated. This bench calibrates
(GEMM throughput, copy bandwidth), predicts TTFT across sequence lengths,
and compares against wall-clock measurements.
"""

from __future__ import annotations

from repro.bench import emit, format_table
from repro.hw.calibrate import calibrate_host, predicted_vs_measured

LENGTHS = [256, 512, 1024, 2048]


def test_calibration_predicts_engine(benchmark, small_model):
    calibration = calibrate_host()
    rows_raw = predicted_vs_measured(small_model, LENGTHS, calibration)
    rows = [
        [n, round(1000 * predicted, 1), round(1000 * measured, 1),
         round(measured / predicted, 2)]
        for n, predicted, measured in rows_raw
    ]
    emit(
        "calibration",
        format_table(
            "Calibration: roofline prediction vs measured prefill (llama-small, this host)",
            ["tokens", "predicted_ms", "measured_ms", "measured/predicted"],
            rows,
            note=f"host: {calibration.matmul_flops / 1e9:.0f} GFLOP/s GEMM, "
            f"{calibration.copy_bandwidth / 1e9:.1f} GB/s memcpy",
        ),
    )
    # The model must track reality within a modest constant factor at every
    # length, and capture the quadratic growth trend. (The bound is loose
    # because micro-benchmarks and the measured run may see different
    # co-tenant load on a shared machine.)
    for _, predicted, measured in rows_raw:
        ratio = measured / predicted
        assert 0.15 < ratio < 8.0, rows
    growth_predicted = rows_raw[-1][1] / rows_raw[0][1]
    growth_measured = rows_raw[-1][2] / rows_raw[0][2]
    assert 0.3 * growth_measured < growth_predicted < 3 * growth_measured
    benchmark(measure := (lambda: predicted_vs_measured(small_model, [256], calibration)))
