"""Figure 6 — code generation with source files as prompt modules (§5.6.1).

Paper result: treating each source file (Unit, Map, Game, Player) as a
prompt module gives ~4x TTFT improvement on GPU with *identical* output
(CodeLlama-7B). Here: the synthetic game codebase drives the real engine
(measured identity + speedup on this host) and the device model at
CodeLlama-7B shape reproduces the ~4x GPU figure.
"""

from __future__ import annotations

from repro.bench import emit, format_table
from repro.cache.engine import PromptCache
from repro.datasets.codegen import game_codebase, module_name_for
from repro.hw.device import RTX_4090
from repro.hw.latency import baseline_ttft, cached_ttft
from repro.llm.config import paper_config
from repro.pml.chat import PLAIN_TEMPLATE


def code_schema() -> str:
    files = game_codebase(seed=0)
    modules = "".join(
        f'<module name="{module_name_for(path)}"><![CDATA[{source}]]></module>'
        for path, source in files.items()
    )
    return f'<schema name="game-code">{modules}</schema>'


QUESTION = " write a function that moves every unit one tile north ."


def test_fig6_identical_output_and_speedup(benchmark, small_model, tok):
    pc = PromptCache(small_model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(code_schema())
    imports = "".join(f"<{module_name_for(p)}/>" for p in game_codebase())
    prompt = f'<prompt schema="game-code">{imports}{QUESTION}</prompt>'

    cached = pc.serve(prompt, max_new_tokens=12)
    baseline = pc.baseline(prompt, max_new_tokens=12)
    speedup = baseline.ttft_s / cached.ttft_s

    # Modeled at the paper's CodeLlama-7B shape: ~2K-token codebase context,
    # ~20-token uncached request, GPU memory.
    codellama = paper_config("codellama-7b")
    modeled_base = baseline_ttft(codellama, 2048, RTX_4090).total_s
    modeled_cached = cached_ttft(codellama, 2048, 24, RTX_4090, "gpu").total_s
    modeled_speedup = modeled_base / modeled_cached

    emit(
        "fig6_codegen",
        format_table(
            "Figure 6: multi-file code generation (files as modules)",
            ["quantity", "value"],
            [
                ["files cached as modules", len(game_codebase())],
                ["cached tokens (measured)", cached.cached_tokens],
                ["uncached tokens (measured)", cached.uncached_tokens],
                ["measured TTFT speedup (small model, host CPU)", f"{speedup:.1f}x"],
                ["modeled TTFT speedup (codellama-7b, rtx-4090)", f"{modeled_speedup:.1f}x"],
                ["output identical to baseline", cached.output_ids == baseline.output_ids],
            ],
            note="paper: ~4x TTFT on GPU with identical output",
        ),
    )
    assert speedup > 2
    assert 2.5 < modeled_speedup < 8
    pc.serve(prompt, max_new_tokens=1)  # ensure warm
    benchmark(pc.serve, prompt, max_new_tokens=1)
