"""Ablation 2 — cache replacement policies under skewed module popularity.

The paper defers "GPU cache replacement strategies" to future work (§6);
this ablation implements the obvious candidates (LRU, LFU, FIFO,
size-aware) and compares hit rates when a constrained GPU tier serves a
Zipf-distributed module working set — the paper's envisioned scenario of
many schemas competing for HBM.
"""

from __future__ import annotations

import numpy as np

from repro.bench import emit, format_table
from repro.cache.storage import CacheKey, CacheTier, POLICIES
from repro.llm.kv import ModuleKV

RNG_SEED = 17
N_MODULES = 40
N_ACCESSES = 2500
CAPACITY_ENTRIES = 8


def make_kv(tokens: int) -> ModuleKV:
    shape = (2, tokens, 8)
    zeros = np.zeros(shape, dtype=np.float32)
    return ModuleKV(keys=[zeros], values=[zeros], positions=np.arange(tokens))


def run_policy(policy: str) -> tuple[float, int]:
    """(hit_rate, evictions) for a Zipf(1.2) access stream."""
    rng = np.random.default_rng(RNG_SEED)
    # Module sizes vary 10..160 tokens; popularity is Zipf over module ids.
    sizes = rng.integers(10, 160, size=N_MODULES)
    unit = make_kv(10).nbytes()
    tier = CacheTier("gpu", capacity_bytes=CAPACITY_ENTRIES * 16 * unit, policy=policy)
    ranks = rng.zipf(1.2, size=N_ACCESSES) % N_MODULES
    for module_id in ranks:
        key = CacheKey("bench", f"m{module_id}")
        if tier.get(key) is None:
            tier.put(key, make_kv(int(sizes[module_id])))  # encode on miss
    return tier.stats.hit_rate, tier.stats.evictions


def test_abl_eviction_policies(benchmark):
    rows = []
    for policy in sorted(POLICIES):
        hit_rate, evictions = run_policy(policy)
        rows.append([policy, f"{100 * hit_rate:.1f}%", evictions])
    emit(
        "abl_eviction",
        format_table(
            "Ablation 2: eviction policy hit rates (Zipf(1.2) module popularity)",
            ["policy", "hit_rate", "evictions"],
            rows,
            note=f"{N_MODULES} modules, capacity ~{CAPACITY_ENTRIES} median modules, "
            f"{N_ACCESSES} accesses",
        ),
    )
    by_policy = {r[0]: float(r[1].rstrip("%")) for r in rows}
    # Recency/frequency-aware policies must beat FIFO on a Zipf stream.
    assert by_policy["lru"] > by_policy["fifo"]
    assert by_policy["lfu"] > by_policy["fifo"]
    assert all(30 < v < 100 for v in by_policy.values()), by_policy
    benchmark(run_policy, "lru")
