"""Figure 5 — cache advantage: quadratic baseline vs linear Prompt Cache.

Paper result: KV-cache TTFT grows quadratically with sequence length while
Prompt Cache's cost (memcpy + constant suffix) grows linearly, so the gap
widens quadratically; the effect is stronger on CPUs than GPUs.

Reproduced twice:
- *modeled* — the device model swept 1K→10K tokens on the i9, RTX 4090 and
  A40, fully-cached prompts, modules in CPU memory (the paper's setup);
- *measured* — the NumPy engine swept over real sequence lengths on this
  host, same protocol (all tokens cached in one module).
"""

from __future__ import annotations

import numpy as np

from repro.bench import emit, format_series, time_call
from repro.cache.engine import PromptCache
from repro.hw.device import A40, INTEL_I9_13900K, RTX_4090
from repro.hw.latency import baseline_ttft, cached_ttft
from repro.llm.config import paper_config
from repro.pml.chat import PLAIN_TEMPLATE

LLAMA7B = paper_config("llama2-7b")
LENGTHS = [1000, 2000, 3000, 5000, 7000, 10000]


def modeled_curves():
    series: dict[str, list[float]] = {}
    for device in (INTEL_I9_13900K, RTX_4090, A40):
        series[f"{device.name}-baseline_s"] = [
            round(baseline_ttft(LLAMA7B, n, device).total_s, 3) for n in LENGTHS
        ]
        series[f"{device.name}-cached_s"] = [
            round(cached_ttft(LLAMA7B, n, 1, device, "cpu").total_s, 3)
            for n in LENGTHS
        ]
    return series


def test_fig5_modeled(benchmark):
    series = modeled_curves()
    emit(
        "fig5_cache_advantage",
        format_series(
            "Figure 5: TTFT vs sequence length, fully cached prompts (modeled)",
            "tokens", LENGTHS, series,
            note="baseline quadratic, Prompt Cache linear; gap widens with length",
        ),
    )
    for device in ("i9-13900k", "rtx-4090", "a40"):
        base = series[f"{device}-baseline_s"]
        cached = series[f"{device}-cached_s"]
        # Across a 10x length span: cached grows sub-linearly (<10x, it is
        # linear with a constant term), baseline super-linearly (>10x, the
        # quadratic attention term dominates).
        span = LENGTHS[-1] / LENGTHS[0]
        assert cached[-1] / cached[0] < span < base[-1] / base[0], device
        # The advantage (gap) must widen monotonically.
        gaps = [b - c for b, c in zip(base, cached)]
        assert all(g2 > g1 for g1, g2 in zip(gaps, gaps[1:])), device
    # CPU benefits more than GPU at every length (§5.4).
    cpu_ratio = series["i9-13900k-baseline_s"][-1] / series["i9-13900k-cached_s"][-1]
    gpu_ratio = series["rtx-4090-baseline_s"][-1] / series["rtx-4090-cached_s"][-1]
    assert cpu_ratio > gpu_ratio
    benchmark(modeled_curves)


def test_fig5_measured(benchmark, tiny_model, tok):
    """Same sweep on the real engine (tiny shape, this host's CPU)."""
    lengths = [128, 256, 512, 1024, 2048]
    filler_words = "the quick brown fox jumps over the lazy dog "
    baseline_ms, cached_ms = [], []
    pc = PromptCache(tiny_model, tok, template=PLAIN_TEMPLATE)
    for i, n in enumerate(lengths):
        text = filler_words * (n // 8)
        ids = tok.encode(text)[:n]
        text = tok.decode(ids)
        name = f"sweep{i}"
        pc.register_schema(
            f'<schema name="{name}"><module name="m">{text}</module></schema>'
        )
        prompt = f'<prompt schema="{name}"><m/></prompt>'
        cached_ms.append(round(1000 * time_call(pc.serve, prompt, max_new_tokens=1, repeats=2), 2))
        baseline_ms.append(round(1000 * time_call(pc.baseline, prompt, max_new_tokens=1, repeats=2), 2))
    emit(
        "fig5_cache_advantage_measured",
        format_series(
            "Figure 5 (measured): NumPy engine on this host, llama-tiny",
            "tokens", lengths,
            {"baseline_ms": baseline_ms, "cached_ms": cached_ms},
            note="fully cached prompt; cached cost is splice + 1-token suffix",
        ),
    )
    assert baseline_ms[-1] / baseline_ms[0] > 2 * (cached_ms[-1] / max(cached_ms[0], 0.01))
    assert cached_ms[-1] < baseline_ms[-1]
    prompt = '<prompt schema="sweep4"><m/></prompt>'
    benchmark(pc.serve, prompt, max_new_tokens=1)
