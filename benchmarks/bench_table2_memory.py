"""Table 2 — memory overhead of caching a single token (MB/token, fp16).

Paper values: BERT 0.03, Falcon-1B 0.18, Llama2-7B 0.50, Llama2-13B 0.78,
MPT-30B 1.31, Falcon-40B 1.87, Llama2-70B 2.5, Falcon-180B 4.53.

Regenerated from the architecture shapes alone, plus a cross-check that a
tiny model's *actual* cached tensors match the analytic count bit-for-bit
(scaled to fp16 accounting).
"""

from __future__ import annotations

import pytest

from repro.bench import emit, format_table
from repro.cache.encoder import encode_module
from repro.cache.layout import layout_schema
from repro.hw.allocator import mb_per_token, module_bytes
from repro.llm.config import paper_config
from repro.pml import Schema

TABLE2 = [
    ("bert-base", 0.03), ("falcon-1b", 0.18), ("llama2-7b", 0.50),
    ("llama2-13b", 0.78), ("mpt-30b", 1.31), ("falcon-40b", 1.87),
    ("llama2-70b", 2.50), ("falcon-180b", 4.53),
]


def table2_rows():
    return [
        [name, paper, round(mb_per_token(paper_config(name)), 2)]
        for name, paper in TABLE2
    ]


def test_table2_memory_per_token(benchmark):
    rows = table2_rows()
    emit(
        "table2_memory",
        format_table(
            "Table 2: memory overhead of caching a single token (fp16)",
            ["model", "paper_MB_per_token", "ours_MB_per_token"],
            rows,
            note="MB = MiB; paper's BERT row truncates 0.035 to 0.03",
        ),
    )
    for name, paper, ours in rows:
        assert ours == pytest.approx(paper, abs=0.011), name
    benchmark(table2_rows)


def test_table2_example_magnitudes(benchmark):
    """§5.5's worked examples: ~180 MB per 1K-token document on Falcon-1B,
    ~2.5 GB on Llama2-70B."""
    falcon = module_bytes(paper_config("falcon-1b"), 1000)
    llama70 = module_bytes(paper_config("llama2-70b"), 1000)
    assert 170e6 < falcon < 210e6
    assert 2.4e9 < llama70 < 2.8e9
    benchmark(module_bytes, paper_config("llama2-70b"), 1000)


def test_table2_accounting_matches_real_tensors(benchmark, tiny_model, tok):
    """The analytic bytes/token equal the engine's actual cached tensor
    sizes (fp32 arrays here; fp16 accounting is exactly half)."""
    text = "the quick brown fox jumps over the lazy dog " * 4
    schema = Schema.parse(f'<schema name="acc"><module name="m">{text}</module></schema>')
    layout = layout_schema(schema, tok)
    kv = encode_module(tiny_model, layout.module("m"))
    n = len(kv)
    analytic_fp32 = tiny_model.config.kv_bytes_per_token(bytes_per_element=4) * n
    tensor_bytes = sum(k.nbytes + v.nbytes for k, v in zip(kv.keys, kv.values))
    assert tensor_bytes == analytic_fp32
    benchmark(encode_module, tiny_model, layout.module("m"))
