"""Encode/memory plane: parallel schema warm-up + zero-copy warm start.

Two comparisons, one per half of the encode/memory plane:

- **warm-up** — one schema's module set encoded by ``ParallelEncoder``
  with 1 worker (sequential in-process) vs ``POOL_WORKERS`` fork-pool
  workers. Modules are independent forward passes (paper §3.3), so the
  pooled path should approach linear speedup; outputs are asserted
  byte-identical to the sequential encode.
- **warm-start** — the same store persisted as format v1
  (``savez_compressed`` archives, full eager verify) vs format v2
  (raw ``.npy`` arenas attached via ``np.memmap`` with sparse sampled
  verification). v2 restart cost is O(index), not O(bytes).

CLI use (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_encode_parallel.py --quick \
        --out BENCH_encode.json \
        --check-against benchmarks/results/BENCH_encode_baseline.json

The regression gate compares the *ratio* v2-attach/v1-load warm-start
time, not absolute seconds, so the committed baseline holds across
machines. The parallel-speedup acceptance gate only arms on hosts with
>= ``POOL_WORKERS`` cores (a 1-core runner cannot show pool speedup);
the bit-identity assertions always run.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench import emit, format_table
from repro.cache.layout import layout_schema
from repro.cache.parallel import ParallelEncoder, fork_available
from repro.cache.persist import attach_snapshot, load_store, save_store
from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.llm import build_model, small_config
from repro.pml.schema import Schema
from repro.tokenizer import default_tokenizer

POOL_WORKERS = 4
# The gate fails when the v2/v1 warm-start ratio worsens >25% vs baseline.
REGRESSION_TOLERANCE = 1.25
# Millisecond-scale loads jitter on shared CI hosts; the floor keeps the
# gate from flapping on noise. A lost memmap fast path (v2 re-reading
# every byte eagerly) drives the ratio toward 1.0, far above the floor.
NOISE_FLOOR_RATIO = 0.25
# ISSUE floors: >=2x pooled warm-up (full run), >=10x v2 warm start.
WARMUP_SPEEDUP_FLOOR = 2.0
WARMUP_SPEEDUP_FLOOR_QUICK = 1.5
WARMSTART_SPEEDUP_FLOOR = 10.0
WARMSTART_SPEEDUP_FLOOR_QUICK = 3.0


def _schema(n_modules: int, body_repeats: int) -> str:
    body = "the quick brown fox jumps over the lazy dog . " * body_repeats
    modules = "".join(
        f'<module name="m{i}">{body}</module>' for i in range(n_modules)
    )
    return f'<schema name="encbench">{modules}</schema>'


def _pooled_gate_armed() -> bool:
    """Whether this host can meaningfully demonstrate pool speedup."""
    return fork_available() and (os.cpu_count() or 1) >= POOL_WORKERS


def _measure_warmup(model, layout, *, workers: int, repeats: int) -> dict:
    """Best-of-N schema warm-up wall time through one (warm) encoder."""
    with ParallelEncoder(model, workers=workers) as encoder:
        out = encoder.encode_schema(layout)  # warm the pool (forks once)
        best = encoder.last_report.wall_s
        for _ in range(repeats - 1):
            out = encoder.encode_schema(layout)
            best = min(best, encoder.last_report.wall_s)
        return {
            "workers": workers,
            "parallel": encoder.parallel,
            "warmup_s": best,
            "out": out,
        }


def _identical(seq_out: dict, par_out: dict) -> bool:
    if list(seq_out) != list(par_out):
        return False
    for key in seq_out:
        for side in ("key_arena", "value_arena", "positions"):
            if not np.array_equal(
                np.asarray(getattr(seq_out[key], side)),
                np.asarray(getattr(par_out[key], side)),
            ):
                return False
    return True


def _store_from(out: dict) -> ModuleCacheStore:
    store = ModuleCacheStore()
    for (name, variant), kv in out.items():
        store.put(CacheKey("encbench", name, variant), kv, tier="cpu")
    return store


def _measure_warmstart(store, workdir: Path, *, repeats: int) -> dict:
    """v1 eager compressed round-trip vs v2 memmap attach, best-of-N."""
    v1_dir, v2_dir = workdir / "snap_v1", workdir / "snap_v2"
    save_store(store, v1_dir, format="v1")
    save_store(store, v2_dir)

    def best_of(load) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            load()
            best = min(best, time.perf_counter() - start)
        return best

    v1_s = best_of(lambda: load_store(v1_dir))
    v2_s = best_of(lambda: attach_snapshot(v2_dir, background_verify=False))

    attached = attach_snapshot(v2_dir, background_verify=False)
    reference = load_store(v1_dir)
    identical = all(
        np.array_equal(
            np.asarray(attached.store.peek(key).kv.key_arena),
            reference.peek(key).kv.key_arena,
        )
        and np.array_equal(
            np.asarray(attached.store.peek(key).kv.value_arena),
            reference.peek(key).kv.value_arena,
        )
        for key in reference.cpu.keys()
    )
    return {
        "snapshot_bytes": store.total_bytes(),
        "v1_load_s": v1_s,
        "v2_attach_s": v2_s,
        "mapped_bytes": attached.mapped_bytes,
        "loads_identical": identical,
    }


def run_encode_bench(
    model, tok, workdir: Path, *, quick: bool = False
) -> dict:
    """Warm-up + warm-start comparison. Returns the result dict that
    ``BENCH_encode.json`` serializes."""
    repeats = 3 if quick else 5
    n_modules = 4 if quick else 8
    body_repeats = 8 if quick else 30
    layout = layout_schema(Schema.parse(_schema(n_modules, body_repeats)), tok)

    sequential = _measure_warmup(model, layout, workers=1, repeats=repeats)
    pooled = _measure_warmup(
        model, layout, workers=POOL_WORKERS, repeats=repeats
    )
    store = _store_from(sequential["out"])
    warmstart = _measure_warmstart(store, workdir, repeats=repeats)
    return {
        "quick": quick,
        "n_modules": n_modules,
        "module_tokens": len(layout.module("m0").token_ids),
        "pool_workers": POOL_WORKERS,
        "host_cpus": os.cpu_count() or 1,
        "pooled_gate_armed": _pooled_gate_armed(),
        "warmup": {
            "sequential_s": sequential["warmup_s"],
            "parallel_s": pooled["warmup_s"],
            "ran_parallel": pooled["parallel"],
            "speedup": sequential["warmup_s"] / pooled["warmup_s"],
            "outputs_identical": _identical(sequential["out"], pooled["out"]),
        },
        "warmstart": {
            **warmstart,
            "speedup": warmstart["v1_load_s"] / warmstart["v2_attach_s"],
            "ratio": warmstart["v2_attach_s"] / warmstart["v1_load_s"],
        },
    }


def check_acceptance(results: dict) -> None:
    """The ISSUE's floors: bit-identical always; speedups where the host
    can express them (pool gate needs >= POOL_WORKERS cores)."""
    warmup, warmstart = results["warmup"], results["warmstart"]
    assert warmup["outputs_identical"], (
        "pooled encode diverged from sequential — bit-equality broken"
    )
    assert warmstart["loads_identical"], (
        "v2 memmap attach diverged from the v1 eager load"
    )
    quick = results["quick"]
    start_floor = (
        WARMSTART_SPEEDUP_FLOOR_QUICK if quick else WARMSTART_SPEEDUP_FLOOR
    )
    assert warmstart["speedup"] >= start_floor, (
        f"warm-start speedup {warmstart['speedup']:.1f}x < {start_floor}x "
        f"(v1 {warmstart['v1_load_s'] * 1e3:.1f} ms, "
        f"v2 {warmstart['v2_attach_s'] * 1e3:.1f} ms)"
    )
    if results["pooled_gate_armed"]:
        warm_floor = (
            WARMUP_SPEEDUP_FLOOR_QUICK if quick else WARMUP_SPEEDUP_FLOOR
        )
        assert warmup["ran_parallel"], "pool gate armed but encode ran sequentially"
        assert warmup["speedup"] >= warm_floor, (
            f"schema warm-up speedup {warmup['speedup']:.2f}x < {warm_floor}x "
            f"at {results['pool_workers']} workers"
        )
    else:
        print(
            f"pool speedup gate skipped: host has {results['host_cpus']} "
            f"cpu(s), fork_available={fork_available()}"
        )


def check_regression(results: dict, baseline_path: Path) -> None:
    """Fail when the v2/v1 warm-start ratio regressed >25% vs baseline."""
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("quick") != results["quick"]:
        print(
            "warning: baseline and run use different workload sizes "
            "(--quick mismatch); the ratio comparison is apples-to-oranges"
        )
    ratio = results["warmstart"]["ratio"]
    base = baseline["warmstart"]["ratio"]
    limit = max(base * REGRESSION_TOLERANCE, NOISE_FLOOR_RATIO)
    if ratio > limit:
        raise SystemExit(
            f"warm-start regression: v2/v1 ratio {ratio:.4f} > "
            f"{limit:.4f} (baseline {base:.4f} +25%)"
        )
    print(
        f"regression gate ok: warm-start ratio {ratio:.4f} <= {limit:.4f} "
        f"(baseline {base:.4f} +25%)"
    )


def _report(results: dict) -> str:
    warmup, warmstart = results["warmup"], results["warmstart"]
    rows = [
        [
            "warm-up",
            f"{warmup['sequential_s'] * 1e3:.1f}",
            f"{warmup['parallel_s'] * 1e3:.1f}",
            f"{warmup['speedup']:.2f}x",
            "yes" if warmup["outputs_identical"] else "NO",
        ],
        [
            "warm-start",
            f"{warmstart['v1_load_s'] * 1e3:.1f}",
            f"{warmstart['v2_attach_s'] * 1e3:.1f}",
            f"{warmstart['speedup']:.2f}x",
            "yes" if warmstart["loads_identical"] else "NO",
        ],
    ]
    return emit(
        "encode_parallel",
        format_table(
            f"Encode plane: {results['n_modules']} modules x "
            f"{results['module_tokens']} tokens, "
            f"{results['pool_workers']}-worker pool",
            ["phase", "baseline (ms)", "plane (ms)", "speedup", "identical"],
            rows,
            note=(
                f"snapshot {warmstart['snapshot_bytes'] // 1024} KiB, "
                f"{warmstart['mapped_bytes'] // 1024} KiB mapped; pool gate "
                f"{'armed' if results['pooled_gate_armed'] else 'off'} "
                f"({results['host_cpus']} cpus)"
            ),
        ),
    )


def test_encode_parallel(small_model, tok, tmp_path):
    results = run_encode_bench(small_model, tok, tmp_path, quick=True)
    _report(results)
    check_acceptance(results)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller schema, fewer repeats (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_encode.json"),
        help="where to write the JSON result",
    )
    parser.add_argument(
        "--check-against", type=Path, default=None,
        help="baseline JSON; exit non-zero on >25%% warm-start regression",
    )
    args = parser.parse_args(argv)

    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    with tempfile.TemporaryDirectory(prefix="bench_encode_") as workdir:
        results = run_encode_bench(model, tok, Path(workdir), quick=args.quick)
    _report(results)
    check_acceptance(results)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check_against is not None:
        check_regression(results, args.check_against)


if __name__ == "__main__":
    main()
