"""Table 1 — output accuracy with and without Prompt Cache.

Paper result: across 8 LongBench datasets and 4 models (Llama2-7B/13B,
MPT-7B, Falcon-7B), cached scores track baseline scores closely under
deterministic greedy decoding; Passage Retrieval is the notable outlier
(7.50 -> 4.25 on Llama2-7B) because cross-passage comparison suffers from
per-module attention masking.

Offline substitution (DESIGN.md §2): four mini models *trained from
scratch* on the synthetic recall tasks stand in for the pretrained
checkpoints; scores are real task metrics over the synthetic suite.
Absolute values differ from the paper (different models, different data);
the claim under test is the *shape*: cached ≈ baseline everywhere, with
retrieval-style tasks the weakest.

Weights are cached in benchmarks/weights/ — run
``python benchmarks/train_table1_models.py`` first (≈10 min/model) or let
this bench train on first use.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.bench import emit, format_table
from repro.cache.engine import PromptCache
from repro.datasets.metrics import score
from repro.datasets.suite import HEADLINE_DATASETS, build_dataset
from repro.llm.config import TRAINED_MODELS, trained_config
from repro.llm.models import TransformerModel
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer
from repro.train import load_or_train
from repro.train.trainer import recipe_for

WEIGHTS_DIR = Path(__file__).parent / "weights"
N_SAMPLES = 6
CONTEXT_WORDS = 150

MODEL_ORDER = ["llama2-7b-mini", "llama2-13b-mini", "mpt-7b-mini", "falcon-7b-mini"]


def _max_new_tokens(metric: str) -> int:
    return 48 if metric == "rougeL" else 8


def evaluate(pc: PromptCache, dataset: str) -> tuple[float, float]:
    """(baseline score, cached score) averaged over the dataset samples."""
    samples = build_dataset(dataset, n_samples=N_SAMPLES, context_words=CONTEXT_WORDS)
    baseline_scores, cached_scores = [], []
    for sample in samples:
        pc.register_schema(sample.schema_pml(), eager=False)
        prompt = sample.prompt_pml()
        limit = _max_new_tokens(sample.metric)
        baseline = pc.baseline(prompt, max_new_tokens=limit)
        cached = pc.serve(prompt, max_new_tokens=limit)
        baseline_text = pc.tokenizer.decode(baseline.output_ids, skip_specials=True)
        baseline_scores.append(score(sample.metric, baseline_text, sample.answer))
        cached_scores.append(score(sample.metric, cached.text, sample.answer))
    return float(np.mean(baseline_scores)), float(np.mean(cached_scores))


@pytest.fixture(scope="module")
def engines():
    tok = default_tokenizer()
    out = {}
    for name in MODEL_ORDER:
        cfg = trained_config(name, vocab_size=tok.vocab_size)
        params = load_or_train(cfg, tok, WEIGHTS_DIR, recipe_for(name))
        out[name] = PromptCache(
            TransformerModel(cfg, params), tok, template=PLAIN_TEMPLATE
        )
    return out


def test_table1_accuracy(benchmark, engines):
    rows = []
    deltas = []
    for dataset in HEADLINE_DATASETS:
        metric = build_dataset(dataset, n_samples=1, context_words=80)[0].metric
        row = [dataset, metric]
        for name in MODEL_ORDER:
            base, cached = evaluate(engines[name], dataset)
            row += [round(base, 1), round(cached, 1)]
            deltas.append((dataset, name, base, cached))
        rows.append(row)

    header = ["dataset", "metric"]
    for name in MODEL_ORDER:
        short = name.removesuffix("-mini")
        header += [f"{short}_base", f"{short}_cached"]
    emit(
        "table1_accuracy",
        format_table(
            "Table 1: accuracy, baseline KV Cache vs Prompt Cache (greedy)",
            header, rows,
            note="trained mini models on the synthetic suite; shape claim: "
            "cached tracks baseline, retrieval-style tasks weakest",
        ),
    )

    # Shape assertions.
    qa_like = [
        d for d in deltas if d[0] in ("narrativeqa", "triviaqa", "2wikimqa")
    ]
    assert any(base > 25 for _, _, base, _ in qa_like), (
        "trained models must genuinely retrieve answers on QA datasets"
    )
    for dataset, name, base, cached in deltas:
        if dataset == "passage_retrieval_en":
            continue  # the paper's outlier too
        assert abs(base - cached) <= 25, (dataset, name, base, cached)
    overall_base = np.mean([d[2] for d in deltas])
    overall_cached = np.mean([d[3] for d in deltas])
    assert abs(overall_base - overall_cached) < 8

    benchmark(evaluate, engines["llama2-7b-mini"], "narrativeqa")
