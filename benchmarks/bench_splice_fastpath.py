"""Three-level splice fast path: plan cache + spliced bases vs legacy concat.

Serves the same multi-module prompt repeatedly through two engines that
differ only in ``splice_mode``:

- ``legacy`` — the original path: per-layer ``buffered_concat`` of every
  cached module into a fresh flat cache on *every* request.
- ``paged`` (default) — compiled plans are memoized, the spliced base is
  kept as refcounted pages, and a repeat request forks it (refcount bumps,
  no memcpy) and decodes through the in-place mirror lease.

Reported per mode: repeat-request ``splice_s``, ``ttft_s``, ``ttst_s``
(time to second token) and ``allocation_count()`` per request. Asserted:
outputs byte-identical, splice ≥2× faster, and the allocation reduction
of at least ``n_layers × (n_modules - 1)`` promised by the arena splice.

CLI use (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_splice_fastpath.py --quick \
        --out BENCH_splice.json \
        --check-against benchmarks/results/BENCH_splice_baseline.json

The regression gate compares the *ratio* paged/legacy splice time, not
absolute seconds, so the committed baseline holds across machines.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.bench import emit, format_table
from repro.cache.engine import PromptCache
from repro.llm import build_model, small_config
from repro.llm.kv import allocation_count, reset_allocation_count
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer

N_MODULES = 4
SUFFIX = " what happened here ?"
# The gate fails when paged/legacy splice ratio worsens >25% vs baseline.
REGRESSION_TOLERANCE = 1.25
# Sub-millisecond splice times jitter by 2-3x run to run on shared CI
# hosts; the floor keeps the gate from flapping on noise while still
# catching a real regression (a lost fast path drives the ratio toward
# 1.0, an order of magnitude above the floor).
NOISE_FLOOR_RATIO = 0.10


def _schema(body_repeats: int) -> str:
    body = "the quick brown fox jumps over the lazy dog . " * body_repeats
    modules = "".join(
        f'<module name="m{i}">{body}</module>' for i in range(N_MODULES)
    )
    return f'<schema name="fastpath">{modules}</schema>'


def _prompt() -> str:
    uses = "".join(f"<m{i}/>" for i in range(N_MODULES))
    return f'<prompt schema="fastpath">{uses}{SUFFIX}</prompt>'


def _measure_mode(
    model, tok, mode: str, *, repeats: int, body_repeats: int,
    max_new_tokens: int,
) -> dict:
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE, splice_mode=mode)
    pc.register_schema(_schema(body_repeats), eager=True)
    prompt = _prompt()
    pc.serve(prompt, max_new_tokens=max_new_tokens)  # warm plan/base/store

    reset_allocation_count()
    counted = pc.serve(prompt, max_new_tokens=max_new_tokens)
    allocs = allocation_count()

    best = counted
    for _ in range(repeats - 1):
        result = pc.serve(prompt, max_new_tokens=max_new_tokens)
        if result.splice_s < best.splice_s:
            best = result
    return {
        "splice_s": best.splice_s,
        "ttft_s": best.ttft_s,
        "ttst_s": best.ttft_s + best.step_times_s[0],
        "allocs_per_request": allocs,
        "cached_tokens": best.cached_tokens,
        "output_ids": best.output_ids,
    }


def run_fastpath_bench(
    model, tok, *, quick: bool = False, max_new_tokens: int = 4
) -> dict:
    """Repeat-request comparison of legacy vs paged splice. Returns the
    result dict that ``BENCH_splice.json`` serializes."""
    repeats = 5 if quick else 8
    body_repeats = 10 if quick else 20
    modes = {
        mode: _measure_mode(
            model, tok, mode, repeats=repeats, body_repeats=body_repeats,
            max_new_tokens=max_new_tokens,
        )
        for mode in ("legacy", "paged")
    }
    legacy, paged = modes["legacy"], modes["paged"]
    return {
        "quick": quick,
        "n_layers": model.config.n_layers,
        "n_modules": N_MODULES,
        "cached_tokens": paged["cached_tokens"],
        "modes": modes,
        "splice_speedup": legacy["splice_s"] / paged["splice_s"],
        "splice_ratio": paged["splice_s"] / legacy["splice_s"],
        "alloc_reduction": (
            legacy["allocs_per_request"] - paged["allocs_per_request"]
        ),
        "outputs_identical": legacy["output_ids"] == paged["output_ids"],
    }


def check_acceptance(results: dict) -> None:
    """The ISSUE's floors: identical outputs, ≥2× splice, arena alloc win."""
    assert results["outputs_identical"], (
        "fast path changed output token IDs: "
        f"{results['modes']['paged']['output_ids']} != "
        f"{results['modes']['legacy']['output_ids']}"
    )
    assert results["splice_speedup"] >= 2.0, (
        f"repeat-request splice speedup {results['splice_speedup']:.2f}x < 2x"
    )
    floor = results["n_layers"] * (results["n_modules"] - 1)
    assert results["alloc_reduction"] >= floor, (
        f"allocation reduction {results['alloc_reduction']} < "
        f"n_layers*(n_modules-1) = {floor}"
    )


def check_regression(results: dict, baseline_path: Path) -> None:
    """Fail when the cached-serve splice ratio regressed >25% vs baseline."""
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("quick") != results["quick"]:
        print(
            "warning: baseline and run use different workload sizes "
            "(--quick mismatch); the ratio comparison is apples-to-oranges"
        )
    ratio, base = results["splice_ratio"], baseline["splice_ratio"]
    limit = max(base * REGRESSION_TOLERANCE, NOISE_FLOOR_RATIO)
    if ratio > limit:
        raise SystemExit(
            f"splice regression: paged/legacy ratio {ratio:.4f} > "
            f"{limit:.4f} (baseline {base:.4f} +25%)"
        )
    print(
        f"regression gate ok: splice ratio {ratio:.4f} <= {limit:.4f} "
        f"(baseline {base:.4f} +25%)"
    )


def _report(results: dict) -> str:
    rows = []
    for mode in ("legacy", "paged"):
        m = results["modes"][mode]
        rows.append(
            [
                mode,
                f"{m['splice_s'] * 1e6:.0f}",
                f"{m['ttft_s'] * 1e3:.2f}",
                f"{m['ttst_s'] * 1e3:.2f}",
                m["allocs_per_request"],
            ]
        )
    return emit(
        "splice_fastpath",
        format_table(
            f"Splice fast path: repeat requests, {results['n_modules']} modules"
            f" x {results['cached_tokens'] // results['n_modules']} tokens",
            ["mode", "splice (us)", "ttft (ms)", "ttst (ms)", "allocs/req"],
            rows,
            note=(
                f"speedup {results['splice_speedup']:.1f}x, alloc reduction "
                f"{results['alloc_reduction']}, outputs identical: "
                f"{results['outputs_identical']}"
            ),
        ),
    )


def test_splice_fastpath(small_model, tok):
    results = run_fastpath_bench(small_model, tok, quick=True)
    _report(results)
    check_acceptance(results)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller modules, fewer repeats (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_splice.json"),
        help="where to write the JSON result",
    )
    parser.add_argument(
        "--check-against", type=Path, default=None,
        help="baseline JSON; exit non-zero on >25%% splice-ratio regression",
    )
    args = parser.parse_args(argv)

    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    results = run_fastpath_bench(model, tok, quick=args.quick)
    _report(results)
    check_acceptance(results)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check_against is not None:
        check_regression(results, args.check_against)


if __name__ == "__main__":
    main()
