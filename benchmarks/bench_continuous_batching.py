"""Continuous iteration-level batching vs whole-request dispatch.

One decode-heavy open-loop trace, two :class:`LiveServer` modes over the
same weights and the same warmed schema cache:

- **whole_request** — the legacy path: the batcher groups requests by
  ``(schema, max_new_tokens)`` and each group occupies the engine until
  its *longest* member finishes, decoding one sequence at a time.
- **continuous** — the iteration-level scheduler: per-token admission,
  one batched single-token forward across every in-flight sequence,
  retirement (and slot refill) the same iteration a sequence finishes.

The workload mixes short (16) and long (128) ``max_new_tokens`` budgets
— the shape where whole-request dispatch wastes the most: short requests
queue behind long decodes, and every decode forward runs alone.

Reported: goodput (generated tokens / wall-clock from first arrival to
last completion) per mode and the continuous/legacy ratio, p50/p95 TTFT
per mode, and byte-identity of every generated token between the modes.

CLI use (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_continuous_batching.py --quick \
        --out BENCH_continuous.json \
        --check-against benchmarks/results/BENCH_continuous_baseline.json

The regression gate compares the goodput *ratio* (continuous over
whole-request), not absolute tokens/s, so the committed baseline holds
across machines. Losing iteration-level batching (scheduler falling back
to one-at-a-time decode) drives the ratio toward 1.0, far below the gate.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
from pathlib import Path

from repro.bench import emit, format_table
from repro.cache.engine import PromptCache
from repro.llm import build_model, small_config
from repro.pml.chat import PLAIN_TEMPLATE
from repro.server import LiveServer, ServeOptions
from repro.tokenizer import default_tokenizer

# The gate fails when the continuous/whole-request goodput ratio drops
# >25% below baseline...
REGRESSION_TOLERANCE = 1.25
# ...but never demands more than this — an absolute ratio any host with
# working iteration-level batching clears, so a fast-baseline machine
# does not make slower CI hosts flap. A broken scheduler (per-sequence
# decode) lands near 1.0, far below it.
SAFE_RATIO = 1.6
# ISSUE floors: >=2x goodput at the committed workload; the quick smoke
# runs a smaller trace where fixed overheads weigh more.
GOODPUT_RATIO_FLOOR = 2.0
GOODPUT_RATIO_FLOOR_QUICK = 1.3
# "p95 TTFT no worse": continuous admission must not regress first-token
# latency vs the legacy batcher under the same open-loop arrivals.
TTFT_P95_TOLERANCE = 1.0

SCHEMA = (
    '<schema name="bench">'
    '<module name="doc">plan a trip lasting three days focus on food '
    "the quick brown fox jumps over the lazy dog paris museums cafes "
    "architecture louvre seine miami beaches nightlife surf spots art "
    "deco answer the question using the documents above</module>"
    "</schema>"
)

SUFFIXES = [
    "answer the question",
    "plan a trip",
    "focus on food",
    "the capital of atlantis",
    "miami beaches nightlife",
    "paris museums cafes",
    "surf spots art deco",
    "lasting three days",
]


def build_trace(requests: int, budgets: tuple[int, int]) -> list[tuple[str, int]]:
    """(prompt, max_new_tokens) pairs, one short to every four longs,
    interleaved so every arrival window holds both classes — the
    decode-heavy mix where whole-request dispatch wastes the most (short
    requests queue behind long decodes that run one sequence at a time)."""
    short, long_ = budgets
    return [
        (
            f'<prompt schema="bench"><doc/> {SUFFIXES[i % len(SUFFIXES)]}</prompt>',
            short if i % 5 == 0 else long_,
        )
        for i in range(requests)
    ]


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[int(idx)]


async def _drive_open_loop(
    server: LiveServer, trace: list[tuple[str, int]], interarrival_s: float
):
    """Open-loop arrivals: each request is submitted at its scheduled
    time regardless of completions (arrivals never wait on service)."""
    loop = asyncio.get_running_loop()
    start = loop.time()
    requests = []
    for i, (prompt, budget) in enumerate(trace):
        delay = start + i * interarrival_s - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        requests.append(await server.submit(prompt, max_new_tokens=budget))
    results = await asyncio.gather(*(r.wait() for r in requests))
    wall_s = loop.time() - start
    return requests, list(results), wall_s


def run_mode(
    pc: PromptCache,
    mode: str,
    trace: list[tuple[str, int]],
    *,
    interarrival_s: float,
    width: int,
) -> dict:
    """Serve the trace through one LiveServer mode; returns goodput and
    latency stats plus the raw outputs for the identity check."""

    async def main():
        options = ServeOptions(
            mode=mode,
            max_batch=width,
            max_inflight=width,
            queue_delay_budget_s=None,  # no shedding: every request counts
            max_queue_depth=len(trace) + 1,
        )
        async with LiveServer(pc, options) as server:
            return await _drive_open_loop(server, trace, interarrival_s)

    requests, results, wall_s = asyncio.run(main())
    output_tokens = sum(len(r.output_ids) for r in results)
    ttfts = [r.ttft_s() for r in requests if r.ttft_s() is not None]
    return {
        "mode": mode,
        "wall_s": wall_s,
        "output_tokens": output_tokens,
        "goodput_tok_s": output_tokens / wall_s,
        "ttft_p50_ms": _percentile(ttfts, 0.50) * 1e3,
        "ttft_p95_ms": _percentile(ttfts, 0.95) * 1e3,
        "outputs": [r.output_ids for r in results],
    }


def run_continuous_bench(model, tok, *, quick: bool = False) -> dict:
    """The two-mode comparison; returns the dict that
    ``BENCH_continuous.json`` serializes."""
    requests = 8 if quick else 40
    budgets = (8, 32) if quick else (16, 128)
    interarrival_s = 0.01 if quick else 0.005
    # Wide in-flight set: the batched forward's per-token cost keeps
    # falling with width (stacked projections amortize the Python round
    # trips), so every request decodes in flight at once — occupancy is
    # `width` until the short half retires, then half-width for the long
    # decode bulk. Width 32-40 is the measured plateau on this workload
    # (64 regresses: no marginal stacking win, more cache pressure).
    # The legacy mode gets the same ServeOptions; its goodput is
    # width-insensitive anyway (it decodes one sequence at a time, so
    # max_batch only changes grouping, not the token rate).
    width = 8 if quick else 40
    # Both modes run `repeats` times interleaved and keep the best
    # goodput: system noise only ever *adds* wall time, so the max over
    # repeats estimates undisturbed throughput (same reasoning as
    # timeit's min) — per mode, fairly.
    repeats = 1 if quick else 5
    trace = build_trace(requests, budgets)

    modes: dict[str, dict] = {}
    for rep in range(repeats):
        for mode in ("whole_request", "continuous"):
            pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
            pc.register_schema(SCHEMA)
            # Warm outside the timed window: spliced base, compiled plan,
            # BLAS thread pools — both modes start from the same hot cache.
            pc.serve(trace[0][0], max_new_tokens=1)
            run = run_mode(
                pc, mode, trace, interarrival_s=interarrival_s, width=width
            )
            best = modes.get(mode)
            if best is not None and run["outputs"] != best["outputs"]:
                raise AssertionError(
                    f"{mode} outputs changed between repeats — "
                    "decoding is not deterministic"
                )
            if best is None or run["goodput_tok_s"] > best["goodput_tok_s"]:
                modes[mode] = run

    legacy, continuous = modes["whole_request"], modes["continuous"]
    identical = legacy.pop("outputs") == continuous.pop("outputs")
    return {
        "quick": quick,
        "requests": requests,
        "budgets": list(budgets),
        "interarrival_s": interarrival_s,
        "width": width,
        "repeats": repeats,
        "outputs_identical": identical,
        "whole_request": legacy,
        "continuous": continuous,
        "goodput_ratio": continuous["goodput_tok_s"] / legacy["goodput_tok_s"],
        "ttft_p95_ratio": (
            continuous["ttft_p95_ms"] / max(legacy["ttft_p95_ms"], 1e-9)
        ),
    }


def check_acceptance(results: dict) -> None:
    """The ISSUE's floors: byte-identity always, >=2x goodput at the
    committed workload, p95 TTFT no worse than the legacy batcher."""
    assert results["outputs_identical"], (
        "continuous-mode outputs diverged from whole-request serve_batch — "
        "byte-identity broken"
    )
    floor = GOODPUT_RATIO_FLOOR_QUICK if results["quick"] else GOODPUT_RATIO_FLOOR
    ratio = results["goodput_ratio"]
    assert ratio >= floor, (
        f"continuous goodput only {ratio:.2f}x whole-request "
        f"({results['continuous']['goodput_tok_s']:.1f} vs "
        f"{results['whole_request']['goodput_tok_s']:.1f} tok/s), "
        f"floor {floor}x"
    )
    ttft_ratio = results["ttft_p95_ratio"]
    assert ttft_ratio <= TTFT_P95_TOLERANCE, (
        f"continuous p95 TTFT {results['continuous']['ttft_p95_ms']:.1f} ms "
        f"worse than whole-request "
        f"{results['whole_request']['ttft_p95_ms']:.1f} ms"
    )


def check_regression(results: dict, baseline_path: Path) -> None:
    """Fail when the goodput ratio fell >25% below the baseline."""
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("quick") != results["quick"]:
        print(
            "warning: baseline and run use different workload sizes "
            "(--quick mismatch); the ratio comparison is apples-to-oranges"
        )
    ratio = results["goodput_ratio"]
    base = baseline["goodput_ratio"]
    limit = min(base / REGRESSION_TOLERANCE, SAFE_RATIO)
    if ratio < limit:
        raise SystemExit(
            f"continuous-batching regression: goodput ratio {ratio:.3f}x < "
            f"{limit:.3f}x (baseline {base:.3f}x -25%)"
        )
    print(
        f"regression gate ok: goodput ratio {ratio:.3f}x >= {limit:.3f}x "
        f"(baseline {base:.3f}x -25%)"
    )


def _report(results: dict) -> str:
    rows = [
        [
            mode,
            f"{m['goodput_tok_s']:.1f}",
            f"{m['wall_s']:.2f}",
            f"{m['ttft_p50_ms']:.1f}",
            f"{m['ttft_p95_ms']:.1f}",
        ]
        for mode, m in (
            ("whole-request", results["whole_request"]),
            ("continuous", results["continuous"]),
        )
    ]
    short, long_ = results["budgets"]
    return emit(
        "continuous_batching",
        format_table(
            f"Continuous batching: {results['requests']} open-loop requests, "
            f"mixed {short}/{long_} max_new_tokens, width {results['width']}",
            ["mode", "goodput (tok/s)", "wall (s)",
             "TTFT p50 (ms)", "TTFT p95 (ms)"],
            rows,
            note=(
                f"goodput ratio {results['goodput_ratio']:.2f}x, p95 TTFT "
                f"ratio {results['ttft_p95_ratio']:.2f}; outputs identical: "
                f"{'yes' if results['outputs_identical'] else 'NO'}"
            ),
        ),
    )


def test_continuous_batching(small_model, tok):
    results = run_continuous_bench(small_model, tok, quick=True)
    _report(results)
    check_acceptance(results)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller trace, shorter decode budgets (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_continuous.json"),
        help="where to write the JSON result",
    )
    parser.add_argument(
        "--check-against", type=Path, default=None,
        help="baseline JSON; exit non-zero on >25%% goodput-ratio regression",
    )
    args = parser.parse_args(argv)

    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    results = run_continuous_bench(model, tok, quick=args.quick)
    _report(results)
    check_acceptance(results)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check_against is not None:
        check_regression(results, args.check_against)


if __name__ == "__main__":
    main()
