"""Ablation: two-phase shared-prefix decode attention vs share factor.

One schema, one long shared module, S in-flight sequences all decoding
over forks of the same pre-spliced base — the ChunkAttention shape. For
each share factor the continuous scheduler runs the same trace twice:

- **off** — the legacy single-pass kernel: every sequence streams the
  full shared-prefix + private-suffix context itself each step.
- **on** — the two-phase path: one chunk-phase over the shared prefix
  per group per layer, a private phase per sequence, online-softmax
  merge.

Reported per share factor: effective attention FLOPs per decode step
(the bandwidth-equivalent accounting of :mod:`repro.llm.flops`, summed
from the scheduler's own per-iteration share accounting and
cross-checked against its ``flops_saved``), the single-pass/two-phase
FLOP ratio, decode tokens/s for both modes, and byte-identity of every
generated token. The FLOP axis is deterministic — it depends only on
the trace geometry — so the regression gate pins it tightly; wall-clock
tokens/s is informational except for the share-factor-1 guard, which
runs the shipped ``auto`` policy (singletons take the legacy path) and
must not regress against ``off``.

CLI use (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_abl_chunk_attention.py --quick \
        --out BENCH_chunk_attention.json \
        --check-against benchmarks/results/BENCH_chunk_attention_baseline.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.bench import emit, format_table
from repro.cache.engine import PromptCache
from repro.llm import build_model, small_config
from repro.llm.flops import (
    decode_attention_stream_flops,
    two_phase_merge_flops,
)
from repro.pml.chat import PLAIN_TEMPLATE
from repro.server import ContinuousScheduler
from repro.server.request import LiveRequest
from repro.tokenizer import default_tokenizer

# ISSUE floor: >=2x effective attention-FLOP reduction at 16 sequences
# per shared module. The quick smoke's top share factor is smaller, so
# its floor is too.
FLOP_RATIO_FLOOR = 2.0
FLOP_RATIO_FLOOR_QUICK = 1.5
# "No tokens/s regression at share factor 1": the auto policy leaves
# singletons on the legacy path, so this only flags real overhead; the
# slack absorbs wall-clock noise on busy CI hosts.
SHARE1_TOKENS_S_TOLERANCE = 0.75
# Baseline gate: the top-share FLOP ratio is trace-deterministic, so a
# >10% drop means the sharing itself got worse, not the machine.
REGRESSION_TOLERANCE = 1.10

SCHEMA = (
    '<schema name="bench">'
    '<module name="doc">plan a trip lasting three days focus on food '
    "the quick brown fox jumps over the lazy dog paris museums cafes "
    "architecture louvre seine miami beaches nightlife surf spots art "
    "deco answer the question using the documents above the capital of "
    "atlantis is coral city</module>"
    "</schema>"
)

SUFFIXES = [
    "answer the question",
    "plan a trip",
    "focus on food",
    "the capital of atlantis",
    "miami beaches nightlife",
    "paris museums cafes",
    "surf spots art deco",
    "lasting three days",
]


def build_trace(share: int) -> list[str]:
    """S prompts over one shared module with varied private suffixes."""
    return [
        f'<prompt schema="bench"><doc/> {SUFFIXES[i % len(SUFFIXES)]} '
        f"{SUFFIXES[(i // len(SUFFIXES)) % len(SUFFIXES)]}</prompt>"
        for i in range(share)
    ]


def drive(pc: PromptCache, mode: str, prompts: list[str], budget: int) -> dict:
    """Serve the prompts to completion through one scheduler; returns
    outputs, decode timing, and the aggregated share accounting."""
    sched = ContinuousScheduler(
        pc, max_inflight=max(len(prompts), 1), shared_attention=mode
    )
    pending = [
        LiveRequest(
            request_id=f"r{i}",
            prompt=prompt,
            schema="bench",
            max_new_tokens=budget,
            submitted_at=0.0,
        )
        for i, prompt in enumerate(prompts)
    ]
    outputs: dict[str, list[int]] = {}
    decode_s = 0.0
    tokens = 0
    single_flops = 0
    two_phase_flops = 0
    saved_check = 0
    scheduler_saved = 0
    config = pc.model.config
    outcome = sched.iterate(pending)
    while True:
        assert not outcome.requeued
        if outcome.decode_batch and not outcome.prefill_tokens:
            # Pure-decode iterations only: prefill cost is mode-
            # independent and would dilute the tokens/s comparison.
            decode_s += outcome.elapsed_s
            tokens += len(outcome.emitted)
        # Effective attention FLOPs, both ways, from the scheduler's own
        # per-iteration accounting. Every iteration here has at most one
        # group (one shared base), so sizes/tokens pair exactly.
        if outcome.shared_group_sizes:
            size = outcome.shared_group_sizes[0]
            shared_len = outcome.shared_kv_tokens
            private = outcome.private_kv_tokens
            single_iter = decode_attention_stream_flops(
                config, shared_len, queries=size
            ) + decode_attention_stream_flops(config, private)
            two_iter = (
                decode_attention_stream_flops(config, shared_len)
                + decode_attention_stream_flops(config, private)
                + size * two_phase_merge_flops(config)
            )
            single_flops += single_iter
            two_phase_flops += two_iter
            # The scheduler floors each group's savings at zero (a
            # singleton "saves" negative merge overhead); mirror that.
            saved_check += max(single_iter - two_iter, 0)
            scheduler_saved += outcome.flops_saved
        for request, result, error, _at in outcome.finished:
            assert error is None, error
            outputs[request.request_id] = result.output_ids
        if sched.active == 0:
            break
        outcome = sched.iterate([])
    if mode != "off":
        assert saved_check == scheduler_saved, (
            "bench accounting diverged from scheduler flops_saved "
            f"({saved_check} vs {scheduler_saved})"
        )
    return {
        "outputs": outputs,
        "decode_s": decode_s,
        "tokens": tokens,
        "tokens_s": tokens / decode_s if decode_s > 0 else 0.0,
        # Per-layer stream accounting scaled to the whole stack.
        "single_flops": single_flops * config.n_layers,
        "two_phase_flops": two_phase_flops * config.n_layers,
    }


def run_chunk_bench(model, tok, *, quick: bool = False) -> dict:
    share_factors = [1, 4, 8] if quick else [1, 4, 16, 40]
    budget = 6 if quick else 16
    # Best-of-repeats: noise only ever adds wall time, and the share-1
    # guard compares two runs of the *same* code path, so one noisy
    # sample must not fail it.
    repeats = 2 if quick else 3

    points = []
    for share in share_factors:
        prompts = build_trace(share)
        best: dict[str, dict] = {}
        for _rep in range(repeats):
            for mode in ("off", "on", "auto"):
                pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
                pc.register_schema(SCHEMA)
                pc.serve(prompts[0], max_new_tokens=1)  # warm base + plan
                run = drive(pc, mode, prompts, budget)
                prev = best.get(mode)
                if prev is not None and run["outputs"] != prev["outputs"]:
                    raise AssertionError(
                        f"{mode} outputs changed between repeats — "
                        "decoding is not deterministic"
                    )
                if prev is None or run["tokens_s"] > prev["tokens_s"]:
                    best[mode] = run
        off, on, auto = best["off"], best["on"], best["auto"]
        identical = (
            on.pop("outputs") == off["outputs"]
            and auto.pop("outputs") == off.pop("outputs")
        )
        points.append(
            {
                "share": share,
                "outputs_identical": identical,
                "tokens_s_off": off["tokens_s"],
                "tokens_s_on": on["tokens_s"],
                "tokens_s_auto": auto["tokens_s"],
                # The FLOP axis comes from the "on" run, where every
                # iteration's group accounting is live.
                "single_flops": on["single_flops"],
                "two_phase_flops": on["two_phase_flops"],
                "flop_ratio": (
                    on["single_flops"] / on["two_phase_flops"]
                    if on["two_phase_flops"]
                    else 1.0
                ),
            }
        )
    top = points[-1]
    share1 = points[0]
    return {
        "quick": quick,
        "share_factors": share_factors,
        "budget": budget,
        "repeats": repeats,
        "points": points,
        "top_share": top["share"],
        "top_flop_ratio": top["flop_ratio"],
        "share1_tokens_s_ratio": (
            share1["tokens_s_auto"] / share1["tokens_s_off"]
            if share1["tokens_s_off"] > 0
            else 1.0
        ),
    }


def check_acceptance(results: dict) -> None:
    """The ISSUE's floors: byte-identity at every share factor, >=2x
    effective attention-FLOP reduction at high share, no tokens/s
    regression at share factor 1 under the shipped policy."""
    for point in results["points"]:
        assert point["outputs_identical"], (
            f"share {point['share']}: two-phase outputs diverged from the "
            "single-pass kernel — byte-identity broken"
        )
    floor = FLOP_RATIO_FLOOR_QUICK if results["quick"] else FLOP_RATIO_FLOOR
    gate_share = 16 if not results["quick"] else results["top_share"]
    gated = next(p for p in results["points"] if p["share"] >= gate_share)
    assert gated["flop_ratio"] >= floor, (
        f"share {gated['share']}: effective attention-FLOP reduction only "
        f"{gated['flop_ratio']:.2f}x, floor {floor}x"
    )
    ratio = results["share1_tokens_s_ratio"]
    assert ratio >= SHARE1_TOKENS_S_TOLERANCE, (
        f"share-factor-1 decode rate regressed to {ratio:.2f}x of the "
        f"legacy path (tolerance {SHARE1_TOKENS_S_TOLERANCE}x)"
    )


def check_regression(results: dict, baseline_path: Path) -> None:
    """Fail when the top-share FLOP ratio fell >10% below baseline."""
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("quick") != results["quick"]:
        print(
            "warning: baseline and run use different workload sizes "
            "(--quick mismatch); the ratio comparison is apples-to-oranges"
        )
    ratio = results["top_flop_ratio"]
    limit = baseline["top_flop_ratio"] / REGRESSION_TOLERANCE
    if ratio < limit:
        raise SystemExit(
            f"chunk-attention regression: top-share FLOP ratio "
            f"{ratio:.3f}x < {limit:.3f}x "
            f"(baseline {baseline['top_flop_ratio']:.3f}x -10%)"
        )
    print(
        f"regression gate ok: top-share FLOP ratio {ratio:.3f}x >= "
        f"{limit:.3f}x (baseline {baseline['top_flop_ratio']:.3f}x -10%)"
    )


def _report(results: dict) -> str:
    rows = [
        [
            str(p["share"]),
            f"{p['single_flops'] / 1e6:.2f}",
            f"{p['two_phase_flops'] / 1e6:.2f}",
            f"{p['flop_ratio']:.2f}x",
            f"{p['tokens_s_off']:.1f}",
            f"{p['tokens_s_on']:.1f}",
            "yes" if p["outputs_identical"] else "NO",
        ]
        for p in results["points"]
    ]
    return emit(
        "abl_chunk_attention",
        format_table(
            f"Two-phase shared-prefix decode vs share factor "
            f"(budget {results['budget']} tokens)",
            ["share", "single MFLOP", "two-phase MFLOP", "reduction",
             "tok/s off", "tok/s on", "identical"],
            rows,
            note=(
                f"effective attention FLOPs (bandwidth-equivalent), whole "
                f"decode; share-1 auto/off tokens/s ratio "
                f"{results['share1_tokens_s_ratio']:.2f}x"
            ),
        ),
    )


def test_chunk_attention_ablation(small_model, tok):
    results = run_chunk_bench(small_model, tok, quick=True)
    _report(results)
    check_acceptance(results)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer share factors, shorter decode budgets (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_chunk_attention.json"),
        help="where to write the JSON result",
    )
    parser.add_argument(
        "--check-against", type=Path, default=None,
        help="baseline JSON; exit non-zero on >10%% FLOP-ratio regression",
    )
    args = parser.parse_args(argv)

    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    started = time.perf_counter()
    results = run_chunk_bench(model, tok, quick=args.quick)
    results["bench_wall_s"] = time.perf_counter() - started
    _report(results)
    check_acceptance(results)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check_against is not None:
        check_regression(results, args.check_against)


if __name__ == "__main__":
    main()
