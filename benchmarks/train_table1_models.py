"""Pre-train (and cache) the four Table 1 stand-in models.

Run once: ``python benchmarks/train_table1_models.py``. The accuracy bench
loads the cached .npz weights; training each model takes ~10-20 minutes of
CPU (per-model recipes in repro.train.trainer.TRAIN_RECIPES), so it is
kept out of the pytest run.
"""
from pathlib import Path

from repro.llm.config import TRAINED_MODELS, trained_config
from repro.llm.models import TransformerModel
from repro.tokenizer import default_tokenizer
from repro.train import load_or_train, recall_accuracy
from repro.train.trainer import recipe_for

WEIGHTS_DIR = Path(__file__).parent / "weights"


def main() -> None:
    tok = default_tokenizer()
    for name in sorted(TRAINED_MODELS):
        cfg = trained_config(name, vocab_size=tok.vocab_size)
        print(f"=== {name} ===", flush=True)
        params = load_or_train(cfg, tok, WEIGHTS_DIR, recipe_for(name))
        model = TransformerModel(cfg, params)
        acc = recall_accuracy(model, tok, n_probes=20)
        print(f"{name}: recall accuracy {acc:.2f}", flush=True)


if __name__ == "__main__":
    main()
