"""Serving-system simulation — Prompt Cache under load (paper §6).

The paper's future-work claim: Prompt Cache as a serving-system component
improves user-perceived latency and throughput. Simulated here: a single
RTX 4090 server replaying a LongBench-shaped trace (Zipf schema popularity,
Poisson arrivals, short decodes — the latency-sensitive RAG regime the
paper calls out). Reported: TTFT percentiles vs arrival rate and the
highest rate each system sustains under a 2-second p95 TTFT SLO.
"""

from __future__ import annotations

from repro.bench import emit, format_table
from repro.hw.device import RTX_4090
from repro.llm.config import paper_config
from repro.serving import (
    SchemaProfile,
    SimConfig,
    simulate,
    sustainable_rate,
    synthesize_trace,
)

LLAMA7B = paper_config("llama2-7b")
RATES = [0.1, 0.2, 0.4, 0.8, 1.2, 2.0]
DURATION_S = 120.0

# Latency-sensitive RAG profile: big cached contexts, short answers.
PROFILES = [
    SchemaProfile(f"schema{i}", module_tokens=4000, uncached_mean=100,
                  decode_mean=12, weight=1.0 / (i + 1))
    for i in range(6)
]


def run_curves():
    rows = []
    for rate in RATES:
        trace = synthesize_trace(PROFILES, rate, DURATION_S, seed=2)
        row = [rate, len(trace)]
        for mode in ("baseline", "prompt-cache"):
            cfg = SimConfig(
                model=LLAMA7B, device=RTX_4090, mode=mode,
                gpu_capacity_bytes=30 * 10**9,
            )
            report = simulate(trace, cfg)
            row += [
                round(report.ttft_percentile(50), 2),
                round(report.ttft_percentile(95), 2),
            ]
        rows.append(row)
    return rows


def test_serving_simulation(benchmark):
    rows = run_curves()
    slo_rates = {}
    for mode in ("baseline", "prompt-cache"):
        cfg = SimConfig(
            model=LLAMA7B, device=RTX_4090, mode=mode, gpu_capacity_bytes=30 * 10**9
        )
        slo_rates[mode] = sustainable_rate(
            PROFILES, cfg, rates=RATES, duration_s=DURATION_S, ttft_slo_s=2.0, seed=2
        )
    rows.append(["p95<=2s max rate", "-", slo_rates["baseline"], "-", slo_rates["prompt-cache"], ""])
    emit(
        "serving_simulation",
        format_table(
            "Serving simulation: RTX 4090, Llama2-7B, Zipf schemas, Poisson arrivals",
            ["rate_rps", "requests", "baseline_p50_s", "baseline_p95_s",
             "cached_p50_s", "cached_p95_s"],
            rows,
            note="single FCFS server; cached mode pays one-time encodes and "
            "h2d refetches on eviction (30 GB module budget)",
        ),
    )
    # Shape: prompt cache dominates at every load level and sustains a
    # strictly higher SLO-compliant arrival rate.
    for row in rows[:-1]:
        rate, _, base_p50, base_p95, cached_p50, cached_p95 = row
        assert cached_p50 <= base_p50
        assert cached_p95 <= base_p95 * 1.05
    assert slo_rates["prompt-cache"] >= 2 * slo_rates["baseline"]
    benchmark(run_curves)
