"""Reuse discovery: schema-free mining vs cold raw serving.

One trace, two engines over the same weights. Every prompt is a shared
system preamble plus a short per-user suffix — the schema-free traffic
shape of paper §5.3 personalization, but with **no PML markup**: the
miner has to find the shared run in the token stream by itself.

- **discovery OFF** — plain ``serve_text``; every request prefills the
  full prompt (the raw-serving baseline).
- **discovery ON** — ``attach_discovery``; pass 1 mines the trace and
  auto-registers the shared prefix as discovered modules, pass 2 splices
  them and only prefills each request's unique tail.

Reported: discovered-cache hit rate (cached / prompt tokens, pass 2),
median TTFT on vs off, and byte-identity of every generated token
between the two engines — discovery must never change outputs.

CLI use (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_reuse_discovery.py --quick \
        --out BENCH_reuse.json \
        --check-against benchmarks/results/BENCH_reuse_baseline.json

The regression gate compares the *ratio* TTFT-on/TTFT-off on pass 2,
not absolute seconds, so the committed baseline holds across machines.
A broken discovery path (nothing promoted, nothing spliced) drives the
ratio toward 1.0, far above the gate.
"""

from __future__ import annotations

import argparse
import json
import statistics
from pathlib import Path

from repro.bench import emit, format_table
from repro.cache.engine import PromptCache
from repro.llm import build_model, small_config
from repro.reuse import DiscoveryConfig
from repro.reuse.dedup import analyze_batch
from repro.server.loadgen import build_raw_prompts
from repro.tokenizer import default_tokenizer

# The gate fails when the pass-2 on/off TTFT ratio worsens >25% vs
# baseline.
REGRESSION_TOLERANCE = 1.25
# Sub-millisecond TTFTs jitter on shared CI hosts; the floor keeps the
# gate from flapping on noise. Losing the splice (re-prefilling the
# shared run every request) drives the ratio toward 1.0, far above it.
NOISE_FLOOR_RATIO = 0.55
# ISSUE floors: discovery must engage (hit rate > 0) and pay for itself.
HIT_RATE_FLOOR = 0.30
HIT_RATE_FLOOR_QUICK = 0.30
TTFT_SPEEDUP_FLOOR = 1.5
TTFT_SPEEDUP_FLOOR_QUICK = 1.15


def _serve_pass(pc: PromptCache, prompts: list[str], *, max_new_tokens: int):
    """One full pass over the trace; per-request engine-reported TTFT."""
    results = [pc.serve_text(t, max_new_tokens=max_new_tokens) for t in prompts]
    return {
        "results": results,
        "ttft_s": [r.ttft_s for r in results],
        "cached_tokens": sum(r.cached_tokens for r in results),
        "prompt_tokens": sum(r.prompt_tokens for r in results),
    }


def _hit_rate(served: dict) -> float:
    return served["cached_tokens"] / max(1, served["prompt_tokens"])


def run_reuse_bench(model, tok, *, quick: bool = False) -> dict:
    """Two passes over a shared-preamble trace, on vs off. Returns the
    result dict that ``BENCH_reuse.json`` serializes."""
    requests = 8 if quick else 24
    shared_tokens = 96 if quick else 192
    suffix_tokens = 12 if quick else 16
    max_new_tokens = 4 if quick else 8
    prompts = build_raw_prompts(
        tok, requests,
        shared_tokens=shared_tokens, suffix_tokens=suffix_tokens, seed=0,
    )
    dedup = analyze_batch([tok.encode(t) for t in prompts])

    pc_off = PromptCache(model, tok)
    pc_on = PromptCache(model, tok)
    pc_on.attach_discovery(DiscoveryConfig(min_hits=2, min_tokens=16))

    passes = []
    identical = True
    for _ in range(2):
        off = _serve_pass(pc_off, prompts, max_new_tokens=max_new_tokens)
        on = _serve_pass(pc_on, prompts, max_new_tokens=max_new_tokens)
        identical = identical and all(
            a.output_ids == b.output_ids
            for a, b in zip(off["results"], on["results"])
        )
        off_ms = statistics.median(off["ttft_s"]) * 1e3
        on_ms = statistics.median(on["ttft_s"]) * 1e3
        passes.append({
            "off_ttft_ms": off_ms,
            "on_ttft_ms": on_ms,
            "speedup": off_ms / on_ms,
            "hit_rate_on": _hit_rate(on),
            "hit_rate_off": _hit_rate(off),
        })

    snap = pc_on.discovery.snapshot()
    steady = passes[-1]
    return {
        "quick": quick,
        "requests": requests,
        "shared_tokens": shared_tokens,
        "suffix_tokens": suffix_tokens,
        "prompt_tokens_mean": sum(
            len(tok.encode(t)) for t in prompts
        ) / requests,
        "dedup_potential": dedup.potential,
        "outputs_identical": identical,
        "passes": passes,
        "discovery": {
            "promotions": snap["promotions"],
            "demotions": snap["demotions"],
            "modules": snap["modules"],
            "trie_nodes": snap["trie_nodes"],
            "trie_tokens": snap["trie_tokens"],
        },
        "steady": {
            **steady,
            "ratio": steady["on_ttft_ms"] / steady["off_ttft_ms"],
        },
    }


def check_acceptance(results: dict) -> None:
    """The ISSUE's floors: byte-identity always; discovered hit rate > 0
    and a real TTFT win once the miner has seen the trace (pass 2)."""
    assert results["outputs_identical"], (
        "discovery-on outputs diverged from discovery-off — "
        "byte-identity broken"
    )
    assert results["discovery"]["promotions"] >= 1, (
        "miner never promoted the shared preamble"
    )
    steady = results["steady"]
    quick = results["quick"]
    hit_floor = HIT_RATE_FLOOR_QUICK if quick else HIT_RATE_FLOOR
    assert steady["hit_rate_on"] >= hit_floor, (
        f"discovered hit rate {steady['hit_rate_on']:.2f} < {hit_floor} "
        "on pass 2"
    )
    assert results["passes"][-1]["hit_rate_off"] == 0.0, (
        "discovery-off engine reported cached tokens on raw traffic"
    )
    ttft_floor = TTFT_SPEEDUP_FLOOR_QUICK if quick else TTFT_SPEEDUP_FLOOR
    assert steady["speedup"] >= ttft_floor, (
        f"pass-2 TTFT speedup {steady['speedup']:.2f}x < {ttft_floor}x "
        f"(off {steady['off_ttft_ms']:.2f} ms, on {steady['on_ttft_ms']:.2f} ms)"
    )


def check_regression(results: dict, baseline_path: Path) -> None:
    """Fail when the pass-2 on/off TTFT ratio regressed >25% vs baseline."""
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("quick") != results["quick"]:
        print(
            "warning: baseline and run use different workload sizes "
            "(--quick mismatch); the ratio comparison is apples-to-oranges"
        )
    ratio = results["steady"]["ratio"]
    base = baseline["steady"]["ratio"]
    limit = max(base * REGRESSION_TOLERANCE, NOISE_FLOOR_RATIO)
    if ratio > limit:
        raise SystemExit(
            f"reuse-discovery regression: on/off TTFT ratio {ratio:.4f} > "
            f"{limit:.4f} (baseline {base:.4f} +25%)"
        )
    print(
        f"regression gate ok: on/off TTFT ratio {ratio:.4f} <= {limit:.4f} "
        f"(baseline {base:.4f} +25%)"
    )


def _report(results: dict) -> str:
    rows = [
        [
            f"pass {i + 1}",
            f"{p['off_ttft_ms']:.2f}",
            f"{p['on_ttft_ms']:.2f}",
            f"{p['speedup']:.2f}x",
            f"{p['hit_rate_on']:.2f}",
        ]
        for i, p in enumerate(results["passes"])
    ]
    disc = results["discovery"]
    return emit(
        "reuse_discovery",
        format_table(
            f"Reuse discovery: {results['requests']} raw requests, "
            f"~{results['shared_tokens']}-token shared preamble + "
            f"{results['suffix_tokens']}-token suffixes",
            ["pass", "off TTFT (ms)", "on TTFT (ms)", "speedup", "hit rate"],
            rows,
            note=(
                f"dedup potential {results['dedup_potential']:.2f}; "
                f"{disc['promotions']} promotions -> {disc['modules']} "
                f"modules, trie {disc['trie_nodes']} nodes / "
                f"{disc['trie_tokens']} tokens; outputs identical: "
                f"{'yes' if results['outputs_identical'] else 'NO'}"
            ),
        ),
    )


def test_reuse_discovery(small_model, tok):
    results = run_reuse_bench(small_model, tok, quick=True)
    _report(results)
    check_acceptance(results)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller trace, shorter preamble (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_reuse.json"),
        help="where to write the JSON result",
    )
    parser.add_argument(
        "--check-against", type=Path, default=None,
        help="baseline JSON; exit non-zero on >25%% TTFT-ratio regression",
    )
    args = parser.parse_args(argv)

    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    results = run_reuse_bench(model, tok, quick=args.quick)
    _report(results)
    check_acceptance(results)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check_against is not None:
        check_regression(results, args.check_against)


if __name__ == "__main__":
    main()
