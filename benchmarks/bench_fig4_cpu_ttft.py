"""Figure 4 — CPU TTFT across the eight headline datasets.

Paper result: up to 70x TTFT reduction on the Intel i9-13900K (DDR5) and
up to 20x on the AMD Ryzen 9 7950X (DDR4); datasets with large uncached
portions (TriviaQA) gain least.

Two reproductions: (i) the analytical model at paper scale for both CPUs;
(ii) a *fully measured* run — this host's CPU executing the NumPy engine —
whose baseline/cached ratio demonstrates the same shape on real hardware.
"""

from __future__ import annotations

from repro.bench import (
    dataset_profile,
    emit,
    format_table,
    measure_sample,
    modeled_ttft,
    scale_profile,
)
from repro.datasets.suite import HEADLINE_DATASETS, build_dataset
from repro.hw.device import CPU_DEVICES
from repro.llm.config import paper_config

PAPER_CONTEXT_TOKENS = 5000
LLAMA7B = paper_config("llama2-7b")


def fig4_rows(tok):
    rows = []
    for name in HEADLINE_DATASETS:
        profile = scale_profile(
            dataset_profile(name, tok, context_words=600), PAPER_CONTEXT_TOKENS
        )
        for device in CPU_DEVICES:
            result = modeled_ttft(profile, LLAMA7B, device, "cpu")
            rows.append([
                name, device.name, round(result.baseline_s, 2),
                round(result.cached_s, 2), f"{result.speedup:.0f}x",
            ])
    return rows


def test_fig4_cpu_ttft_modeled(benchmark, tok):
    rows = fig4_rows(tok)
    emit(
        "fig4_cpu_ttft",
        format_table(
            "Figure 4: CPU TTFT, Llama2-7B @ ~5K tokens (modeled)",
            ["dataset", "cpu", "baseline_s", "cached_s", "speedup"],
            rows,
            note="paper: up to 70x on the Intel i9, up to 20x on the AMD Ryzen",
        ),
    )
    by_device: dict[str, dict[str, float]] = {}
    for row in rows:
        by_device.setdefault(row[1], {})[row[0]] = float(row[4].rstrip("x"))
    intel, amd = by_device["i9-13900k"], by_device["r9-7950x"]
    # Shape checks: double-digit speedups on both CPUs, Intel well ahead of
    # AMD (the paper's DDR5-vs-DDR4 bandwidth argument, §5.2.2), TriviaQA
    # the clear laggard due to its large uncached few-shot portion.
    assert 25 < max(intel.values()) < 95
    assert 10 < max(amd.values()) < 32
    assert max(intel.values()) > 2 * max(amd.values())
    assert min(intel, key=intel.get) == min(amd, key=amd.get) == "triviaqa"
    benchmark(fig4_rows, tok)


def test_fig4_cpu_ttft_measured(benchmark, pc_small):
    """Real wall clock on this host: baseline full prefill vs cached serve
    for one headline dataset sample (scaled-down context)."""
    sample = build_dataset("2wikimqa", n_samples=1, context_words=700)[0]
    result = measure_sample(pc_small, sample)
    emit(
        "fig4_cpu_ttft_measured",
        format_table(
            "Figure 4 (measured on this host): NumPy engine, llama-small",
            ["dataset", "cached_tokens", "uncached_tokens",
             "baseline_ms", "cached_ms", "speedup"],
            [[
                result.dataset, result.cached_tokens, result.uncached_tokens,
                round(result.baseline_s * 1000, 1), round(result.cached_s * 1000, 1),
                f"{result.speedup:.1f}x",
            ]],
            note="scaled-down shape; the paper's CPU speedups grow with context",
        ),
    )
    assert result.speedup > 2, "cached serve must beat full prefill on CPU"
    prompt = sample.prompt_pml()
    benchmark(pc_small.serve, prompt, max_new_tokens=1)
