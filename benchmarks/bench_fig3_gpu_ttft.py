"""Figure 3 — GPU TTFT across the eight headline LongBench datasets.

Paper result: on RTX 4090 / A40 / A100 with Llama2-7B, Prompt Cache cuts
TTFT by 1.5–3x when modules live in CPU memory and 5–10x when they live in
GPU memory, consistently across datasets (~5K-token contexts).

Regenerated here from real synthetic-dataset token profiles driving the
analytical device model at the paper's model shape and context scale. The
pytest-benchmark entry measures the real engine's cached serve (small
shape) for a wall-clock counterpart.
"""

from __future__ import annotations

from repro.bench import dataset_profile, emit, format_table, modeled_ttft, scale_profile
from repro.datasets.suite import HEADLINE_DATASETS, build_dataset
from repro.hw.device import GPU_DEVICES
from repro.llm.config import paper_config

PAPER_CONTEXT_TOKENS = 5000
LLAMA7B = paper_config("llama2-7b")


def fig3_rows(tok):
    rows = []
    for name in HEADLINE_DATASETS:
        profile = scale_profile(
            dataset_profile(name, tok, context_words=600), PAPER_CONTEXT_TOKENS
        )
        for device in GPU_DEVICES:
            baseline = modeled_ttft(profile, LLAMA7B, device, "gpu").baseline_s
            gpu_mem = modeled_ttft(profile, LLAMA7B, device, "gpu")
            cpu_mem = modeled_ttft(profile, LLAMA7B, device, "cpu")
            rows.append([
                name, device.name,
                round(baseline * 1000), round(cpu_mem.cached_s * 1000),
                round(gpu_mem.cached_s * 1000),
                f"{cpu_mem.speedup:.1f}x", f"{gpu_mem.speedup:.1f}x",
            ])
    return rows


def test_fig3_gpu_ttft(benchmark, tok, pc_small):
    rows = fig3_rows(tok)
    emit(
        "fig3_gpu_ttft",
        format_table(
            "Figure 3: GPU TTFT, Llama2-7B @ ~5K tokens (modeled)",
            ["dataset", "gpu", "baseline_ms", "cached_cpu_mem_ms",
             "cached_gpu_mem_ms", "speedup_cpu_mem", "speedup_gpu_mem"],
            rows,
            note="paper: 1.5-3x with CPU memory, 5-10x with GPU memory",
        ),
    )
    # Shape assertions: every dataset/device lands in the paper's bands.
    for row in rows:
        cpu_speedup = float(row[5].rstrip("x"))
        gpu_speedup = float(row[6].rstrip("x"))
        assert 1.5 < cpu_speedup < 4.5, row
        assert 4.0 < gpu_speedup < 13.0, row
        assert gpu_speedup > cpu_speedup, row

    # Measured counterpart: cached serve of a real sample on the engine.
    sample = build_dataset("narrativeqa", n_samples=1, context_words=400)[0]
    pc_small.register_schema(sample.schema_pml())
    prompt = sample.prompt_pml()
    pc_small.serve(prompt, max_new_tokens=1)  # warm the module cache
    benchmark(pc_small.serve, prompt, max_new_tokens=1)
