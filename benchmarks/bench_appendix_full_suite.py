"""Appendix — TTFT across the full 21-dataset (here 22) LongBench suite.

The paper's appendix extends Figures 3/4 from 8 headline datasets to all
21. Regenerated for every dataset in the synthetic suite, grouped by
category, on the RTX 4090 (both storage tiers) and the Intel i9.
"""

from __future__ import annotations

from repro.bench import dataset_profile, emit, format_table, modeled_ttft, scale_profile
from repro.datasets.suite import DATASETS
from repro.hw.device import INTEL_I9_13900K, RTX_4090
from repro.llm.config import paper_config

PAPER_CONTEXT_TOKENS = 5000
LLAMA7B = paper_config("llama2-7b")


def full_suite_rows(tok):
    rows = []
    for name, spec in sorted(DATASETS.items(), key=lambda kv: (kv[1].category, kv[0])):
        profile = scale_profile(
            dataset_profile(name, tok, context_words=400, n_samples=2),
            PAPER_CONTEXT_TOKENS,
        )
        gpu_mem = modeled_ttft(profile, LLAMA7B, RTX_4090, "gpu")
        cpu_mem = modeled_ttft(profile, LLAMA7B, RTX_4090, "cpu")
        cpu_inf = modeled_ttft(profile, LLAMA7B, INTEL_I9_13900K, "cpu")
        rows.append([
            spec.category, name, profile.uncached_tokens,
            round(gpu_mem.baseline_s * 1000),
            round(cpu_mem.cached_s * 1000), round(gpu_mem.cached_s * 1000),
            f"{gpu_mem.speedup:.1f}x", f"{cpu_inf.speedup:.0f}x",
        ])
    return rows


def test_appendix_full_suite(benchmark, tok):
    rows = full_suite_rows(tok)
    emit(
        "appendix_full_suite",
        format_table(
            "Appendix: all datasets, Llama2-7B @ ~5K tokens (modeled)",
            ["category", "dataset", "uncached_tok", "baseline_ms_4090",
             "cached_cpu_mem_ms", "cached_gpu_mem_ms", "speedup_4090_gpu_mem",
             "speedup_i9"],
            rows,
            note="extends Fig 3/4 to the full suite as in the paper's appendix",
        ),
    )
    assert len(rows) >= 21
    categories = {r[0] for r in rows}
    assert len(categories) == 6
    for row in rows:
        assert float(row[6].rstrip("x")) > 3, row
        assert float(row[7].rstrip("x")) > 4, row
    benchmark(lambda: full_suite_rows(tok))
