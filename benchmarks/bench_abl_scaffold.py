"""Ablation 1 — scaffolding vs independent module encoding (§3.3).

The paper's masking-effect discussion: independent encoding confines
attention to each module (an approximation that can cut either way);
scaffolds trade memory for exact full-prefill states. Measured here:

- scaffold serving is *bit-exact* with the baseline;
- independent encoding diverges in the KV states (deep layers);
- scaffolds cost extra cache memory (the states are stored twice).
"""

from __future__ import annotations

import numpy as np

from repro.bench import emit, format_table
from repro.cache.engine import PromptCache
from repro.cache.storage import CacheKey
from repro.pml.chat import PLAIN_TEMPLATE

SCHEMA_PLAIN = (
    '<schema name="dep-plain">'
    '<module name="setup">the capital of atlantis is coral . </module>'
    '<module name="followup">the harbor of that same capital city is busy . </module>'
    "</schema>"
)
SCHEMA_SCAFFOLD = SCHEMA_PLAIN.replace(
    'name="dep-plain">', 'name="dep-scaffold"><scaffold modules="setup,followup"/>'
)


def test_abl_scaffold_quality_vs_memory(benchmark, small_model, tok):
    pc = PromptCache(small_model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(SCHEMA_PLAIN)
    pc.register_schema(SCHEMA_SCAFFOLD)

    q = " what is the harbor city ?"
    plain_prompt = f'<prompt schema="dep-plain"><setup/><followup/>{q}</prompt>'
    scaff_prompt = f'<prompt schema="dep-scaffold"><setup/><followup/>{q}</prompt>'

    plain = pc.serve(plain_prompt, max_new_tokens=8)
    scaff = pc.serve(scaff_prompt, max_new_tokens=8)
    baseline = pc.baseline(scaff_prompt, max_new_tokens=8)

    # KV divergence between solo and scaffold encodings of `followup`.
    solo = pc.store.fetch(CacheKey("dep-scaffold", "followup", "solo")).entry.kv
    scaffolded = pc.store.fetch(CacheKey("dep-scaffold", "followup", "scaffold0")).entry.kv
    divergence = float(
        np.max(np.abs(solo.keys[-1] - scaffolded.keys[-1]))
    )

    # Memory: the scaffold variant stores a second copy of both modules.
    plain_bytes = sum(
        e.nbytes for e in pc.store.gpu.entries.values() if e.key.schema == "dep-plain"
    )
    scaff_bytes = sum(
        e.nbytes for e in pc.store.gpu.entries.values() if e.key.schema == "dep-scaffold"
    )

    emit(
        "abl_scaffold",
        format_table(
            "Ablation 1: scaffolding vs independent encoding",
            ["quantity", "value"],
            [
                ["scaffold output == baseline", scaff.output_ids == baseline.output_ids],
                ["independent output == baseline", plain.output_ids == baseline.output_ids],
                ["max |KV divergence| solo vs scaffold", round(divergence, 4)],
                ["cache bytes, independent only", plain_bytes],
                ["cache bytes, with scaffold", scaff_bytes],
                ["scaffold memory overhead", f"{scaff_bytes / plain_bytes:.1f}x"],
            ],
            note="scaffolds buy exactness with ~2x memory on the scaffolded set (§3.3)",
        ),
    )
    assert scaff.output_ids == baseline.output_ids
    assert divergence > 0
    assert scaff_bytes >= 2 * plain_bytes * 0.9
    benchmark(pc.serve, scaff_prompt, max_new_tokens=1)
