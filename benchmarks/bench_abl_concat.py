"""Ablation 3 — buffered vs naive KV concatenation (§4.2).

The paper overrides PyTorch's concatenation because pairwise concat
reallocates at every step; the buffered operator allocates once. Measured:
allocation counts (exact) and wall-clock time for realistic module counts.
"""

from __future__ import annotations

import numpy as np

from repro.bench import emit, format_table, time_call
from repro.llm.kv import (
    allocation_count,
    buffered_concat,
    naive_concat,
    reset_allocation_count,
)

N_MODULES = 24
TOKENS_PER_MODULE = 256
SHAPE = (8, TOKENS_PER_MODULE, 64)  # (kv heads, tokens, head dim)


def module_tensors() -> list[np.ndarray]:
    rng = np.random.default_rng(0)
    return [rng.normal(size=SHAPE).astype(np.float32) for _ in range(N_MODULES)]


def test_abl_concat_allocations_and_time(benchmark):
    arrays = module_tensors()

    reset_allocation_count()
    buffered = buffered_concat(arrays, axis=1)
    buffered_allocs = allocation_count()

    reset_allocation_count()
    naive = naive_concat(arrays, axis=1)
    naive_allocs = allocation_count()

    np.testing.assert_array_equal(buffered, naive)

    buffered_s = time_call(buffered_concat, arrays, repeats=5)
    naive_s = time_call(naive_concat, arrays, repeats=5)
    emit(
        "abl_concat",
        format_table(
            "Ablation 3: buffered vs naive KV concatenation",
            ["variant", "allocations", "time_ms", "bytes_allocated"],
            [
                ["buffered (ours, §4.2)", buffered_allocs,
                 round(buffered_s * 1000, 2), buffered.nbytes],
                ["naive pairwise", naive_allocs, round(naive_s * 1000, 2),
                 sum(range(2, N_MODULES + 1)) * arrays[0].nbytes],
            ],
            note=f"{N_MODULES} modules x {TOKENS_PER_MODULE} tokens; naive "
            "allocates O(n) intermediate buffers and O(n^2) bytes",
        ),
    )
    assert buffered_allocs == 1
    assert naive_allocs == N_MODULES - 1
    assert buffered_s < naive_s
    benchmark(buffered_concat, arrays)
